//! Item-level symbol pass: tracks module / `impl` / `fn` scopes over the
//! token stream and records, per function, its call sites, panic sites,
//! and slice-indexing sites — the inputs of the workspace call graph
//! ([`crate::callgraph`]) and the panic-reachability rule.
//!
//! This is a scope *tracker*, not a parser: it recognizes exactly the
//! item shapes this workspace uses (`mod name { … }`, `impl [Trait for]
//! Type { … }`, `trait Name { … }`, `fn name(…) { … }`, `use …;`) and
//! treats every other brace pair as an anonymous block. That is enough
//! to qualify every function as `crate::module::Type::name`, to know
//! which code is `#[cfg(test)]`-gated, and to attribute call sites to
//! their enclosing function.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (the identifier directly before the `(`).
    pub name: String,
    /// `Q` in `Q::name(…)` when the call is path-qualified.
    pub qualifier: Option<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// 1-based line.
    pub line: usize,
}

/// One site that can panic at runtime.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What panics: `unwrap`, `expect`, `panic!`, `unreachable!`, ….
    pub what: String,
    /// 1-based line.
    pub line: usize,
}

/// One function (free or associated) found in a file.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Function name.
    pub name: String,
    /// Inline-module path within the file (e.g. `["tests"]`).
    pub module: Vec<String>,
    /// `impl`/`trait` type the function is associated with, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when the function is `#[cfg(test)]`-gated or `#[test]`.
    pub is_test: bool,
    /// Calls made from the body.
    pub calls: Vec<Call>,
    /// Panic-family sites in the body.
    pub panics: Vec<PanicSite>,
    /// Lines with `expr[…]` indexing in the body.
    pub index_lines: Vec<usize>,
}

impl FnSym {
    /// `Type::name` or plain `name` — how findings refer to the function.
    pub fn display_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Symbol information for one file.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Workspace-relative path.
    pub path: String,
    /// Crate the file belongs to (`crates/<name>/…` or the root crate).
    pub crate_name: String,
    /// Every function found, in source order.
    pub fns: Vec<FnSym>,
    /// Types that have `impl` blocks in this file.
    pub impl_types: BTreeSet<String>,
    /// Line ranges (1-based, inclusive) of `#[cfg(test)]`-gated items.
    pub test_line_ranges: Vec<(usize, usize)>,
    /// Token-index ranges (into the lexed stream) of `use …;` items.
    pub use_tok_ranges: Vec<(usize, usize)>,
    /// True when the file defines its own `fn expect` (so `self.expect(…)`
    /// is a local call, not `Option::expect`).
    pub defines_expect: bool,
}

impl FileSymbols {
    /// True when `line` is inside `#[cfg(test)]`-gated code.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.test_line_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// True when the token at `idx` belongs to a `use` declaration.
    pub fn tok_in_use(&self, idx: usize) -> bool {
        self.use_tok_ranges
            .iter()
            .any(|&(a, b)| a <= idx && idx < b)
    }
}

/// Reserved words that look like calls/index bases but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "loop", "break", "continue", "as",
    "move", "ref", "mut", "let", "fn", "impl", "trait", "mod", "use", "pub", "struct", "enum",
    "const", "static", "where", "unsafe", "dyn", "box", "await", "type", "crate", "super", "self",
    "Self",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Macro names whose invocation aborts the process.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods on `Option`/`Result` that panic on the empty/error arm.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Derives the crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "dmamem_repro".to_string(), // the root `src/` crate
    }
}

enum Ctx {
    /// `opened_range` marks the scope that *itself* carried the test
    /// attribute (and thus opened a `test_line_ranges` entry) — inner
    /// scopes that merely inherit test status must not close it.
    Module {
        name: String,
        test: bool,
        opened_range: bool,
    },
    Impl {
        ty: String,
        test: bool,
        opened_range: bool,
    },
    Fn {
        fn_idx: usize,
        test: bool,
        opened_range: bool,
    },
    Block {
        test: bool,
    },
}

impl Ctx {
    fn test(&self) -> bool {
        match self {
            Ctx::Module { test, .. }
            | Ctx::Impl { test, .. }
            | Ctx::Fn { test, .. }
            | Ctx::Block { test } => *test,
        }
    }

    fn opened_range(&self) -> bool {
        match self {
            Ctx::Module { opened_range, .. }
            | Ctx::Impl { opened_range, .. }
            | Ctx::Fn { opened_range, .. } => *opened_range,
            Ctx::Block { .. } => false,
        }
    }
}

/// Runs the symbol pass over a lexed file.
pub fn analyze(path: &str, toks: &[Tok]) -> FileSymbols {
    // Work over code tokens only; keep a map back to raw indices so
    // `use`-ranges can be reported against the full stream.
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut out = FileSymbols {
        path: path.to_string(),
        crate_name: crate_of(path),
        ..FileSymbols::default()
    };

    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending_test = false; // a `#[cfg(test)]` / `#[test]` attribute seen
    let mut pending_test_line = 0usize;
    let mut j = 0usize;

    let tok = |j: usize| -> Option<&Tok> { code.get(j).map(|&i| &toks[i]) };
    let in_test = |stack: &[Ctx], pending: bool| pending || stack.iter().any(|c| c.test());

    while j < code.len() {
        let t = &toks[code[j]];
        match t.kind {
            TokKind::Punct if t.text == "#" => {
                // Attribute: `#[…]` or `#![…]`. Scan the bracket group for
                // `test` markers.
                let mut k = j + 1;
                if tok(k).is_some_and(|t| t.is_punct("!")) {
                    k += 1;
                }
                if tok(k).is_some_and(|t| t.is_punct("[")) {
                    let mut depth = 0i32;
                    let mut saw_test = false;
                    while let Some(t) = tok(k) {
                        match t.text.as_str() {
                            "[" if t.kind == TokKind::Punct => depth += 1,
                            "]" if t.kind == TokKind::Punct => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "test" if t.kind == TokKind::Ident => saw_test = true,
                            _ => {}
                        }
                        k += 1;
                    }
                    if saw_test {
                        pending_test = true;
                        pending_test_line = t.line;
                    }
                    j = k + 1;
                    continue;
                }
                j += 1;
            }
            TokKind::Ident if t.text == "use" => {
                let start = code[j];
                while j < code.len() && !toks[code[j]].is_punct(";") {
                    j += 1;
                }
                let end = code.get(j).copied().unwrap_or(toks.len());
                out.use_tok_ranges.push((start, end + 1));
                j += 1;
            }
            TokKind::Ident if t.text == "mod" => {
                let name = tok(j + 1).map(|t| t.text.clone()).unwrap_or_default();
                // `mod name;` declares an out-of-line module: nothing to scope.
                if tok(j + 2).is_some_and(|t| t.is_punct("{")) {
                    let test = in_test(&stack, pending_test);
                    let opened_range = test && pending_test;
                    if opened_range {
                        // Remember where the gated region starts.
                        out.test_line_ranges.push((pending_test_line, usize::MAX));
                    }
                    stack.push(Ctx::Module {
                        name,
                        test,
                        opened_range,
                    });
                    pending_test = false;
                    j += 3;
                } else {
                    pending_test = false;
                    j += 2;
                }
            }
            TokKind::Ident if t.text == "impl" || t.text == "trait" => {
                // Find the implemented/declared type name: the last path
                // ident before the body `{` (after `for` when present),
                // skipping generic parameter lists.
                let is_impl = t.text == "impl";
                let mut k = j + 1;
                let mut ty = String::new();
                let mut angle = 0i32;
                while let Some(t) = tok(k) {
                    match (&t.kind, t.text.as_str()) {
                        (TokKind::Punct, "<") => angle += 1,
                        (TokKind::Punct, ">") => angle -= 1,
                        (TokKind::Punct, "<<") => angle += 2,
                        (TokKind::Punct, ">>") => angle -= 2,
                        (TokKind::Punct, "{") if angle <= 0 => break,
                        (TokKind::Punct, ";") if angle <= 0 => break, // e.g. `impl Trait for X;` (never here)
                        (TokKind::Ident, "where") if angle <= 0 => break,
                        (TokKind::Ident, "for") if angle <= 0 => ty.clear(),
                        (TokKind::Ident, name) if angle <= 0 && !is_keyword(name) => {
                            ty = name.to_string();
                        }
                        _ => {}
                    }
                    k += 1;
                }
                // Advance to the `{` (skipping a `where` clause).
                while let Some(t) = tok(k) {
                    if t.is_punct("{") {
                        break;
                    }
                    k += 1;
                }
                if tok(k).is_some() {
                    let test = in_test(&stack, pending_test);
                    let opened_range = test && pending_test;
                    if opened_range {
                        out.test_line_ranges.push((pending_test_line, usize::MAX));
                    }
                    if is_impl && !ty.is_empty() {
                        out.impl_types.insert(ty.clone());
                    }
                    stack.push(Ctx::Impl {
                        ty,
                        test,
                        opened_range,
                    });
                    pending_test = false;
                    j = k + 1;
                } else {
                    pending_test = false;
                    j = k;
                }
            }
            TokKind::Ident if t.text == "fn" => {
                let name = tok(j + 1).map(|t| t.text.clone()).unwrap_or_default();
                let line = t.line;
                let test = in_test(&stack, pending_test);
                if name == "expect" {
                    out.defines_expect = true;
                }
                // Scan the signature to the body `{` or a bodiless `;`.
                let mut k = j + 2;
                let mut angle = 0i32;
                let mut paren = 0i32;
                let mut has_body = false;
                while let Some(t) = tok(k) {
                    match (&t.kind, t.text.as_str()) {
                        (TokKind::Punct, "<") => angle += 1,
                        (TokKind::Punct, ">") => angle -= 1,
                        (TokKind::Punct, "(") => paren += 1,
                        (TokKind::Punct, ")") => paren -= 1,
                        (TokKind::Punct, "->") => {}
                        (TokKind::Punct, "{") if paren == 0 => {
                            has_body = true;
                            break;
                        }
                        (TokKind::Punct, ";") if paren == 0 && angle <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if has_body {
                    let module = stack
                        .iter()
                        .filter_map(|c| match c {
                            Ctx::Module { name, .. } => Some(name.clone()),
                            _ => None,
                        })
                        .collect();
                    let self_ty = stack.iter().rev().find_map(|c| match c {
                        Ctx::Impl { ty, .. } if !ty.is_empty() => Some(ty.clone()),
                        _ => None,
                    });
                    out.fns.push(FnSym {
                        name,
                        module,
                        self_ty,
                        line,
                        is_test: test || crate::rules::is_test_path(path),
                        calls: Vec::new(),
                        panics: Vec::new(),
                        index_lines: Vec::new(),
                    });
                    let opened_range = test && pending_test;
                    if opened_range {
                        out.test_line_ranges.push((pending_test_line, usize::MAX));
                    }
                    stack.push(Ctx::Fn {
                        fn_idx: out.fns.len() - 1,
                        test,
                        opened_range,
                    });
                    pending_test = false;
                    j = k + 1;
                } else {
                    pending_test = false;
                    j = k + 1;
                }
            }
            TokKind::Punct if t.text == "{" => {
                let test = in_test(&stack, false);
                stack.push(Ctx::Block { test });
                j += 1;
            }
            TokKind::Punct if t.text == "}" => {
                if let Some(ctx) = stack.pop() {
                    if ctx.opened_range() {
                        // Close the innermost still-open gated range.
                        if let Some(r) = out
                            .test_line_ranges
                            .iter_mut()
                            .rev()
                            .find(|r| r.1 == usize::MAX)
                        {
                            r.1 = t.line;
                        }
                    }
                }
                j += 1;
            }
            _ => {
                // Inside a function body: record calls, panic sites, and
                // indexing.
                let fn_idx = stack.iter().rev().find_map(|c| match c {
                    Ctx::Fn { fn_idx, .. } => Some(*fn_idx),
                    _ => None,
                });
                if let Some(fi) = fn_idx {
                    record_site(&mut out, fi, toks, &code, j);
                }
                j += 1;
            }
        }
    }
    // Close any ranges left open at EOF.
    let last_line = toks.last().map(|t| t.line).unwrap_or(1);
    for r in &mut out.test_line_ranges {
        if r.1 == usize::MAX {
            r.1 = last_line;
        }
    }
    out
}

/// Records one call / panic / index site at code position `j` into fn `fi`.
fn record_site(out: &mut FileSymbols, fi: usize, toks: &[Tok], code: &[usize], j: usize) {
    let t = &toks[code[j]];
    let next = code.get(j + 1).map(|&i| &toks[i]);
    let prev = j.checked_sub(1).map(|p| &toks[code[p]]);

    if t.kind == TokKind::Ident && !is_keyword(&t.text) {
        // Macro invocation `name!(…)` — only the panic family matters.
        if next.is_some_and(|n| n.is_punct("!")) {
            if PANIC_MACROS.contains(&t.text.as_str()) {
                out.fns[fi].panics.push(PanicSite {
                    what: format!("{}!", t.text),
                    line: t.line,
                });
            }
            return;
        }
        if next.is_some_and(|n| n.is_punct("(")) {
            let method = prev.is_some_and(|p| p.is_punct("."));
            if method && PANIC_METHODS.contains(&t.text.as_str()) {
                // `self.expect(…)` is a local call when the file defines
                // its own `fn expect` (the obs JSON reader does).
                let local_expect = t.text == "expect"
                    && out.defines_expect
                    && j.checked_sub(2)
                        .is_some_and(|p| toks[code[p]].is_ident("self"));
                if !local_expect {
                    out.fns[fi].panics.push(PanicSite {
                        what: t.text.clone(),
                        line: t.line,
                    });
                    return;
                }
            }
            let qualifier = if prev.is_some_and(|p| p.is_punct("::")) {
                j.checked_sub(2)
                    .map(|p| &toks[code[p]])
                    .filter(|q| q.kind == TokKind::Ident)
                    .map(|q| q.text.clone())
            } else {
                None
            };
            out.fns[fi].calls.push(Call {
                name: t.text.clone(),
                qualifier,
                method,
                line: t.line,
            });
        }
        return;
    }

    if t.is_punct("[") {
        // `expr[…]` indexing: the `[` directly follows an index-able
        // expression tail. Array literals (`in [a, b]`, `= [0; N]`),
        // attributes, and slice types never do.
        let indexable = match prev {
            Some(p) => match p.kind {
                TokKind::Ident => !is_keyword(&p.text) || p.text == "self",
                TokKind::Punct => p.text == ")" || p.text == "]",
                _ => false,
            },
            None => false,
        };
        if indexable {
            out.fns[fi].index_lines.push(t.line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn syms(src: &str) -> FileSymbols {
        analyze("crates/dmamem/src/x.rs", &lex(src))
    }

    #[test]
    fn free_and_assoc_fns_are_qualified() {
        let s = syms(
            "fn free() {}\n\
             impl Foo { fn method(&self) {} }\n\
             impl fmt::Display for Bar { fn fmt(&self) {} }\n\
             mod inner { fn nested() {} }\n",
        );
        let names: Vec<String> = s.fns.iter().map(|f| f.display_name()).collect();
        assert_eq!(names, ["free", "Foo::method", "Bar::fmt", "nested"]);
        assert_eq!(s.fns[3].module, vec!["inner".to_string()]);
        assert!(s.impl_types.contains("Foo"));
        assert!(s.impl_types.contains("Bar"));
    }

    #[test]
    fn calls_panics_and_indexing_attach_to_the_right_fn() {
        let s = syms(
            "fn a(v: &[u8]) -> u8 {\n\
                 helper(1);\n\
                 let x = v.first().unwrap();\n\
                 Foo::make();\n\
                 v[0] + x\n\
             }\n\
             fn b() { other(); }\n",
        );
        let a = &s.fns[0];
        assert!(a.calls.iter().any(|c| c.name == "helper" && !c.method));
        assert!(a
            .calls
            .iter()
            .any(|c| c.name == "make" && c.qualifier.as_deref() == Some("Foo")));
        assert!(a.calls.iter().any(|c| c.name == "first" && c.method));
        assert_eq!(a.panics.len(), 1);
        assert_eq!(a.panics[0].what, "unwrap");
        assert_eq!(a.index_lines, vec![5]);
        let b = &s.fns[1];
        assert!(b.calls.iter().any(|c| c.name == "other"));
        assert!(b.panics.is_empty());
    }

    #[test]
    fn panic_macros_are_sites_not_calls() {
        let s = syms("fn f() { panic!(\"boom\"); vec![1]; format!(\"x\"); }\n");
        assert_eq!(s.fns[0].panics.len(), 1);
        assert_eq!(s.fns[0].panics[0].what, "panic!");
        assert!(!s.fns[0].calls.iter().any(|c| c.name == "vec"));
    }

    #[test]
    fn array_literals_and_attrs_are_not_indexing() {
        let s = syms("fn f(m: M) { for c in [m.from, m.to] { touch(c); } let a = [0u8; 4]; }\n");
        assert!(s.fns[0].index_lines.is_empty());
    }

    #[test]
    fn cfg_test_gates_fns_and_ranges() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
fn after() {}
";
        let s = syms(src);
        let t = s.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        assert!(!s.fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(!s.fns.iter().find(|f| f.name == "after").unwrap().is_test);
        assert!(s.line_in_test(4));
        assert!(!s.line_in_test(1));
        assert!(!s.line_in_test(6));
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let s = syms("#[test]\nfn check() { assert!(true); }\nfn live() {}\n");
        assert!(s.fns[0].is_test);
        assert!(!s.fns[1].is_test);
    }

    #[test]
    fn use_ranges_cover_imports() {
        let src = "use std::collections::HashMap;\nfn f() { let m = HashMap::new(); }\n";
        let toks = lex(src);
        let s = analyze("crates/dmamem/src/x.rs", &toks);
        let hash_idxs: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("HashMap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hash_idxs.len(), 2);
        assert!(s.tok_in_use(hash_idxs[0]));
        assert!(!s.tok_in_use(hash_idxs[1]));
    }

    #[test]
    fn local_expect_definition_suppresses_panic_site() {
        let src = "\
impl Reader {
    fn expect(&mut self, b: u8) -> Result<(), E> { Ok(()) }
    fn parse(&mut self) { self.expect(b'\"'); }
}
";
        let s = syms(src);
        let parse = s.fns.iter().find(|f| f.name == "parse").unwrap();
        assert!(parse.panics.is_empty());
        assert!(parse.calls.iter().any(|c| c.name == "expect"));
    }

    #[test]
    fn helper_fn_inside_test_mod_does_not_close_its_range() {
        // Regression: a helper `fn` with no `#[test]` attribute inside a
        // `#[cfg(test)] mod` inherits test status; its closing `}` must
        // not close the *module's* gated range early.
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
    fn another() { accrue(1.5); }
}
";
        let s = syms(src);
        for line in 2..=6 {
            assert!(s.line_in_test(line), "line {line} must be test-gated");
        }
        assert!(!s.line_in_test(1));
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/simcore/src/event.rs"), "simcore");
        assert_eq!(crate_of("src/lib.rs"), "dmamem_repro");
    }
}
