//! The determinism & invariant rules, allow-directive parsing, and
//! suppression application — all token-level since simlint v2.
//!
//! Rules run over the [`crate::lexer`] token stream with scopes driven
//! by workspace path and by the [`crate::symbols`] item pass (which
//! also feeds the [`crate::callgraph`] panic-reachability rule). Every
//! rule can be suppressed per line with a `simlint::allow` comment
//! naming the rule plus a quoted reason — the reason string is
//! mandatory; a reasonless allow is itself a `deny` finding.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph;
use crate::keytable::KeyTable;
use crate::lexer::{lex, Tok, TokKind};
use crate::symbols::{analyze, FileSymbols};

/// Finding severity: `Deny` findings fail the run, `Warn` findings are
/// reported (and serialized) but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, never fails the run.
    Warn,
    /// Enforced: any deny finding makes `simlint` exit nonzero.
    Deny,
}

impl Severity {
    /// Stable lowercase tag used in output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (e.g. `nondet-iter`).
    pub rule: &'static str,
    /// Whether the finding fails the run.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Rule registry: `(name, what it catches)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "nondet-iter",
        "HashMap/HashSet in simulation crates: iteration order depends on the hash seed",
    ),
    (
        "wall-clock",
        "Instant::now/SystemTime outside criterion/bench: wall time must never reach sim state",
    ),
    (
        "ambient-random",
        "RNG construction not routed through simcore::rng seeded types",
    ),
    (
        "float-cmp",
        "sort via partial_cmp (use total_cmp) or nonzero-literal == on floats in accounting code",
    ),
    (
        "panic-path",
        "unwrap/expect/panic! (deny) or indexing (warn) in any fn reachable from the engine hot loop",
    ),
    (
        "unit-safety",
        "arithmetic mixing time-like and energy/power-like identifiers, or raw float literals fed to power accumulators",
    ),
    (
        "obs-key",
        "metric/event key literal not in the dmamem::obs registered key table",
    ),
    (
        "obs-key-live",
        "key registered in a dmamem::obs table but never emitted anywhere in the workspace",
    ),
    (
        "allow-syntax",
        "malformed simlint::allow directive (missing or empty justification, unknown rule)",
    ),
    (
        "unused-allow",
        "simlint::allow directive that suppressed nothing",
    ),
];

const LINT_RULE_NAMES: &[&str] = &[
    "nondet-iter",
    "wall-clock",
    "ambient-random",
    "float-cmp",
    "panic-path",
    "unit-safety",
    "obs-key",
    "obs-key-live",
];

fn canonical_rule(name: &str) -> Option<&'static str> {
    LINT_RULE_NAMES.iter().find(|r| **r == name).copied()
}

// ---------------------------------------------------------------------------
// Path scopes
// ---------------------------------------------------------------------------

/// Simulation-crate sources: everything that feeds simulated state.
/// `simcore`'s `par` (host thread pool) and `obs` (host-side export)
/// modules are excluded — they are deliberately allowed to touch
/// host-order constructs because nothing in them feeds back into sim
/// results.
pub fn is_sim_path(p: &str) -> bool {
    const SIM: &[&str] = &[
        "crates/dmamem/src/",
        "crates/mempower/src/",
        "crates/iobus/src/",
        "crates/disksim/src/",
        "crates/trace/src/",
    ];
    if SIM.iter().any(|pre| p.starts_with(pre)) {
        return true;
    }
    p.starts_with("crates/simcore/src/")
        && p != "crates/simcore/src/par.rs"
        && p != "crates/simcore/src/obs.rs"
        && !p.starts_with("crates/simcore/src/obs/")
}

/// Wall-clock reads are legitimate only in the bench harness and the
/// criterion shim.
pub fn is_wall_clock_scope(p: &str) -> bool {
    !p.starts_with("crates/criterion/") && !p.starts_with("crates/bench/")
}

/// Accounting code (slack ledger, energy/metric accounting) where exact
/// float equality is almost always a latent bug.
pub fn is_float_eq_scope(p: &str) -> bool {
    p.starts_with("crates/dmamem/src/") || p.starts_with("crates/mempower/src/")
}

/// Test-only paths: integration tests, benches, examples, fixtures.
/// Only `obs-key` applies there.
pub fn is_test_path(p: &str) -> bool {
    p.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
}

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Allow {
    rule: String,
    line: usize, // 1-based
    used: bool,
    malformed: Option<&'static str>,
    snippet: String,
}

fn parse_allows(toks: &[Tok]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let mut rest = t.text.as_str();
        while let Some(at) = rest.find("simlint::allow(") {
            rest = &rest[at + "simlint::allow(".len()..];
            let rule: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            let after_rule = rest[rule.len()..].trim_start();
            let malformed = if canonical_rule(&rule).is_none() {
                Some("unknown rule name")
            } else if let Some(tail) = after_rule.strip_prefix(',') {
                let tail = tail.trim_start();
                match tail
                    .strip_prefix('"')
                    .and_then(|t| t.find('"').map(|e| &t[..e]))
                {
                    Some(reason) if reason.trim().is_empty() => {
                        Some("justification string is empty")
                    }
                    Some(_) => None,
                    None => Some("justification must be a quoted string"),
                }
            } else {
                Some("missing justification: write simlint::allow(rule, \"why\")")
            };
            allows.push(Allow {
                rule,
                line: t.line,
                used: false,
                malformed,
                snippet: t.text.trim().chars().take(120).collect(),
            });
        }
    }
    allows
}

// ---------------------------------------------------------------------------
// Unit classes (unit-safety rule)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitClass {
    Time,
    Energy,
    Power,
}

impl UnitClass {
    fn as_str(self) -> &'static str {
        match self {
            UnitClass::Time => "time-like",
            UnitClass::Energy => "energy-like",
            UnitClass::Power => "power-like",
        }
    }
}

/// Classifies an identifier by naming convention. Deliberately
/// conservative: only unit-suffixed names and the `simcore` typed-time
/// accessor methods classify, so ordinary counters stay unclassified.
fn classify_unit(name: &str) -> Option<UnitClass> {
    let n = name.to_ascii_lowercase();
    // Power-*mode* vocabulary is state, not wattage.
    if n.contains("powerdown") || n.contains("power_down") || n.contains("powermode") {
        return None;
    }
    let time_suffix = ["_ps", "_ns", "_us", "_ms", "_secs"]
        .iter()
        .any(|s| n.ends_with(s));
    let time_method = matches!(
        n.as_str(),
        "as_ps"
            | "as_ns_f64"
            | "as_us_f64"
            | "as_ms_f64"
            | "as_secs_f64"
            | "from_ps"
            | "from_ns"
            | "from_us"
            | "from_ms"
            | "from_secs"
    );
    if time_suffix || time_method || n.contains("epoch") || n == "ps" || n == "ns" {
        return Some(UnitClass::Time);
    }
    if n.ends_with("_mj") || n == "mj" || n.contains("energy") {
        return Some(UnitClass::Energy);
    }
    if n.ends_with("_mw") || n == "mw" || n.contains("power") {
        return Some(UnitClass::Power);
    }
    None
}

/// Operators where mixing unit classes between direct operands is a bug
/// (sums, differences, comparisons — unlike `*`/`/`, which legitimately
/// build derived quantities such as power × time = energy).
const UNIT_OPS: &[&str] = &["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!="];

/// Walks the operand chain ending just before code position `k` and
/// returns its classified unit (rightmost classified segment wins:
/// `self.energy_mj[i]` classifies by `energy_mj`). Returns `None` for
/// non-chain operands and for operands that are factors of a `*`/`/`
/// product.
fn left_unit(toks: &[Tok], code: &[usize], k: usize) -> Option<(UnitClass, String)> {
    let mut idents: Vec<&str> = Vec::new();
    let mut i = k.checked_sub(1)?;
    loop {
        let t = &toks[code[i]];
        match (&t.kind, t.text.as_str()) {
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                // Balance back over a call-argument list or index.
                let (open, close) = if t.text == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 1i32;
                loop {
                    i = i.checked_sub(1)?;
                    let u = &toks[code[i]];
                    if u.is_punct(close) {
                        depth += 1;
                    } else if u.is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                i = i.checked_sub(1)?; // the ident (or chain tail) before the opener
            }
            (TokKind::Ident, name) => {
                idents.push(name);
                // The chain continues through `.`/`::` to the left.
                let cont =
                    i >= 2 && (toks[code[i - 1]].is_punct(".") || toks[code[i - 1]].is_punct("::"));
                if cont {
                    i -= 2;
                } else {
                    // Operand complete; a `*`/`/` to its left makes it a
                    // product factor — skip.
                    if i >= 1 {
                        let before = &toks[code[i - 1]];
                        if before.is_punct("*") || before.is_punct("/") {
                            return None;
                        }
                    }
                    break;
                }
            }
            (TokKind::NumInt, _) => {
                // Tuple-field access (`p.0`): unclassified chain segment.
                let cont = i >= 2 && toks[code[i - 1]].is_punct(".");
                if cont {
                    i -= 2;
                } else {
                    return None;
                }
            }
            _ => return None,
        }
    }
    idents
        .iter()
        .find_map(|n| classify_unit(n).map(|c| (c, n.to_string())))
}

/// Forward twin of [`left_unit`] for the operand after code position `k`.
fn right_unit(toks: &[Tok], code: &[usize], k: usize) -> Option<(UnitClass, String)> {
    let mut idents: Vec<&str> = Vec::new();
    let mut i = k + 1;
    // Operand must start with an identifier chain.
    match toks.get(*code.get(i)?)? {
        t if t.kind == TokKind::Ident => idents.push(&t.text),
        _ => return None,
    }
    i += 1;
    while i < code.len() {
        let t = &toks[code[i]];
        match (&t.kind, t.text.as_str()) {
            (TokKind::Punct, ".") | (TokKind::Punct, "::") => {
                match code.get(i + 1).map(|&x| &toks[x]) {
                    Some(n) if n.kind == TokKind::Ident => {
                        idents.push(&n.text);
                        i += 2;
                    }
                    Some(n) if n.kind == TokKind::NumInt => i += 2, // tuple field
                    _ => break,
                }
            }
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => {
                let (open, close) = if t.text == "(" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 0i32;
                while i < code.len() {
                    let u = &toks[code[i]];
                    if u.is_punct(open) {
                        depth += 1;
                    } else if u.is_punct(close) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                i += 1;
            }
            _ => break,
        }
    }
    // A `*`/`/` after the operand makes it a product factor — skip.
    if let Some(&x) = code.get(i) {
        if toks[x].is_punct("*") || toks[x].is_punct("/") {
            return None;
        }
    }
    idents
        .iter()
        .rev()
        .find_map(|n| classify_unit(n).map(|c| (c, n.to_string())))
}

// ---------------------------------------------------------------------------
// Pattern helpers
// ---------------------------------------------------------------------------

/// Nonzero float literal test: `x == 0.0` is the exact-zero sentinel /
/// division-guard idiom and deliberately exempt.
fn float_literal_nonzero(text: &str) -> bool {
    let t = text.replace('_', "");
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .unwrap_or(&t);
    t.parse::<f64>().map(|v| v != 0.0).unwrap_or(true)
}

/// `dmamem.*` tokens inside a string literal that are not registered
/// metric keys (`dmamem.trace.*` tokens check against the trace-key
/// table, `dmamem.prof.*` against the engine self-profiling key table),
/// plus `"kind":"…"` tags not in the event-kind table.
fn bad_obs_keys(lit: &str, keys: &KeyTable) -> Vec<String> {
    let norm = lit.replace("\\\"", "\"");
    let mut bad = Vec::new();
    let mut rest = norm.as_str();
    while let Some(at) = rest.find("dmamem.") {
        let token: String = rest[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
            .collect();
        rest = &rest[at + token.len().max(7)..];
        let token = token.trim_end_matches('.');
        // Bare namespace mentions ("dmamem", "dmamem.trace",
        // "dmamem.prof") are prose, not keys.
        if token == "dmamem" || token == "dmamem.trace" || token == "dmamem.prof" {
            continue;
        }
        let table = if token.starts_with("dmamem.trace.") {
            &keys.trace_keys
        } else if token.starts_with("dmamem.prof.") {
            &keys.prof_keys
        } else {
            &keys.metric_keys
        };
        if !table.contains(token) {
            bad.push(token.to_string());
        }
    }
    let mut rest = norm.as_str();
    while let Some(at) = rest.find("\"kind\":\"") {
        let tail = &rest[at + "\"kind\":\"".len()..];
        let kind: String = tail.chars().take_while(|c| *c != '"').collect();
        if !kind.is_empty() && !keys.event_kinds.contains(&kind) {
            bad.push(format!("kind:{kind}"));
        }
        rest = tail;
    }
    bad
}

// ---------------------------------------------------------------------------
// Per-file token rules
// ---------------------------------------------------------------------------

const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "StdRng",
    "SmallRng",
    "fastrand",
    "RandomState",
];

const SORT_IDENTS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

fn file_findings(
    path: &str,
    toks: &[Tok],
    syms: &FileSymbols,
    keys: &KeyTable,
    out: &mut Vec<Finding>,
) {
    let test_file = is_test_path(path);
    let sim = is_sim_path(path);
    let wall = is_wall_clock_scope(path);
    let float_eq = is_float_eq_scope(path);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let in_test = |line: usize| test_file || syms.line_in_test(line);

    // Lines with sort-family calls, for the partial_cmp proximity check.
    let sort_lines: BTreeSet<usize> = code
        .iter()
        .map(|&i| &toks[i])
        .filter(|t| t.kind == TokKind::Ident && SORT_IDENTS.contains(&t.text.as_str()))
        .map(|t| t.line)
        .collect();

    // One finding per (rule, line) even when a line repeats a pattern.
    let mut seen: BTreeSet<(&'static str, usize)> = BTreeSet::new();
    let mut push = |seen: &mut BTreeSet<(&'static str, usize)>,
                    rule: &'static str,
                    severity: Severity,
                    line: usize,
                    msg: String| {
        if seen.insert((rule, line)) {
            out.push(Finding {
                rule,
                severity,
                path: path.to_string(),
                line,
                message: msg,
                snippet: String::new(),
            });
        }
    };

    for (k, &raw) in code.iter().enumerate() {
        let t = &toks[raw];
        let line = t.line;
        let next = code.get(k + 1).map(|&i| &toks[i]);

        // obs-key applies everywhere, tests included: a typo'd key in a
        // test assertion silently weakens the slack audit replay.
        if t.kind == TokKind::StrLit {
            for bad in bad_obs_keys(&t.text, keys) {
                push(
                    &mut seen,
                    "obs-key",
                    Severity::Deny,
                    line,
                    format!(
                        "`{bad}` is not in the dmamem::obs registered key table \
                         (METRIC_KEYS/EVENT_KINDS); typo'd keys silently drop streams \
                         from the audit replay"
                    ),
                );
            }
        }

        if in_test(line) {
            continue;
        }

        if t.kind == TokKind::Ident {
            let name = t.text.as_str();
            if sim && (name == "HashMap" || name == "HashSet") && !syms.tok_in_use(raw) {
                push(
                    &mut seen,
                    "nondet-iter",
                    Severity::Deny,
                    line,
                    "HashMap/HashSet in simulation code: iteration order is nondeterministic \
                     across runs; use BTreeMap/BTreeSet or sort before iterating"
                        .into(),
                );
            }
            if wall {
                let instant_now = name == "Instant"
                    && next.is_some_and(|n| n.is_punct("::"))
                    && code.get(k + 2).is_some_and(|&i| toks[i].is_ident("now"));
                if instant_now || name == "SystemTime" {
                    push(
                        &mut seen,
                        "wall-clock",
                        Severity::Deny,
                        line,
                        "wall-clock read outside criterion/bench: host time must never reach \
                         simulation state"
                            .into(),
                    );
                }
            }
            if sim {
                let ambient = RNG_IDENTS.contains(&name)
                    || (name == "rand" && next.is_some_and(|n| n.is_punct("::")));
                if ambient {
                    push(
                        &mut seen,
                        "ambient-random",
                        Severity::Deny,
                        line,
                        format!(
                            "ambient RNG `{name}`: all randomness must flow through \
                             simcore::rng seeded types"
                        ),
                    );
                }
                if name == "partial_cmp"
                    && (line.saturating_sub(3)..=line).any(|l| sort_lines.contains(&l))
                {
                    push(
                        &mut seen,
                        "float-cmp",
                        Severity::Deny,
                        line,
                        "float ordering via partial_cmp: NaN breaks the comparator and the \
                         sort order; use f64::total_cmp"
                            .into(),
                    );
                }
                // Raw float literal as a direct argument of the power-model
                // accumulator: magic wattages bypass the named power tables.
                if name == "accrue" && next.is_some_and(|n| n.is_punct("(")) {
                    for lit_line in raw_float_args(toks, &code, k + 1) {
                        push(
                            &mut seen,
                            "unit-safety",
                            Severity::Deny,
                            lit_line,
                            "raw float literal fed into the power-model accumulator; name it \
                             via the power model's constants so the tables stay the single \
                             source of truth"
                                .into(),
                        );
                    }
                }
            }
        }

        if t.kind == TokKind::Punct {
            if float_eq && (t.text == "==" || t.text == "!=") {
                let prev = k.checked_sub(1).map(|p| &toks[code[p]]);
                let lit = [prev, next]
                    .into_iter()
                    .flatten()
                    .find(|u| u.kind == TokKind::NumFloat && float_literal_nonzero(&u.text));
                if lit.is_some() {
                    push(
                        &mut seen,
                        "float-cmp",
                        Severity::Deny,
                        line,
                        "direct equality against a nonzero float literal in accounting code; \
                         compare with an explicit tolerance (exact-zero sentinel guards are \
                         exempt)"
                            .into(),
                    );
                }
            }
            if sim && UNIT_OPS.contains(&t.text.as_str()) {
                if let (Some((lc, ln)), Some((rc, rn))) =
                    (left_unit(toks, &code, k), right_unit(toks, &code, k))
                {
                    if lc != rc {
                        push(
                            &mut seen,
                            "unit-safety",
                            Severity::Deny,
                            line,
                            format!(
                                "`{}` mixes {} `{ln}` with {} `{rn}`: dimensionally unsound \
                                 arithmetic; convert through the typed newtypes or rename one \
                                 side",
                                t.text,
                                lc.as_str(),
                                rc.as_str()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Lines of top-level arguments of the call whose `(` is at code
/// position `open_k` that are bare float literals (optionally signed).
fn raw_float_args(toks: &[Tok], code: &[usize], open_k: usize) -> Vec<usize> {
    let mut lines = Vec::new();
    let mut depth = 0i32;
    let mut arg: Vec<&Tok> = Vec::new();
    let mut i = open_k;
    while i < code.len() {
        let t = &toks[code[i]];
        let d = match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokKind::Punct => 1,
            ")" | "]" | "}" if t.kind == TokKind::Punct => -1,
            _ => 0,
        };
        depth += d;
        let flush = (depth == 1 && t.is_punct(",")) || (depth == 0 && d == -1);
        if flush {
            let is_lit = match arg.as_slice() {
                [l] => l.kind == TokKind::NumFloat,
                [s, l] => s.is_punct("-") && l.kind == TokKind::NumFloat,
                _ => false,
            };
            if is_lit {
                lines.push(arg.last().unwrap().line);
            }
            arg.clear();
            if depth == 0 {
                break;
            }
        } else if d == 0 && depth >= 1 && !(depth == 1 && t.is_punct("(")) {
            arg.push(t);
        }
        i += 1;
    }
    lines
}

// ---------------------------------------------------------------------------
// Obs-key liveness (global pass)
// ---------------------------------------------------------------------------

/// A key registered in a `dmamem::obs` table is *live* when it occurs
/// (as a substring — keys are embedded in larger literals like CSV
/// headers and JSON fragments) in any string literal outside the table
/// declarations themselves. Dead keys are denied at their table line.
fn liveness_findings(
    lits: &[(String, usize, String)], // (path, line, normalized text)
    keys: &KeyTable,
    out: &mut Vec<Finding>,
) {
    for span in &keys.spans {
        for (key, key_line) in &span.entries {
            let live = lits.iter().any(|(path, line, text)| {
                let in_decl = path == crate::OBS_SOURCE
                    && keys
                        .spans
                        .iter()
                        .any(|s| s.start_line <= *line && *line <= s.end_line);
                !in_decl && text.contains(key.as_str())
            });
            if !live {
                out.push(Finding {
                    rule: "obs-key-live",
                    severity: Severity::Deny,
                    path: crate::OBS_SOURCE.to_string(),
                    line: *key_line,
                    message: format!(
                        "`{key}` is registered in {} but never emitted anywhere in the \
                         workspace; dead keys rot the audit schema — delete it or wire up \
                         the emission",
                        span.const_name
                    ),
                    snippet: String::new(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The lint pass
// ---------------------------------------------------------------------------

/// Lints a set of files as one unit: per-file token rules, the
/// workspace panic-reachability pass over all of them, obs-key liveness
/// (when `keys` carries table spans), then `simlint::allow` suppression
/// per file. Returns surviving findings sorted by path, line, rule.
pub fn lint_files(files: &[(String, String)], keys: &KeyTable) -> Vec<Finding> {
    let lexed: Vec<(Vec<Tok>, FileSymbols)> = files
        .iter()
        .map(|(path, source)| {
            let toks = lex(source);
            let syms = analyze(path, &toks);
            (toks, syms)
        })
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    for ((path, _), (toks, syms)) in files.iter().zip(&lexed) {
        file_findings(path, toks, syms, keys, &mut raw);
    }

    let symtabs: Vec<FileSymbols> = lexed.iter().map(|(_, s)| s.clone()).collect();
    raw.extend(callgraph::panic_findings(&symtabs));

    if !keys.spans.is_empty() {
        let lits: Vec<(String, usize, String)> = files
            .iter()
            .zip(&lexed)
            .flat_map(|((path, _), (toks, _))| {
                toks.iter()
                    .filter(|t| t.kind == TokKind::StrLit)
                    .map(|t| (path.clone(), t.line, t.text.replace("\\\"", "\"")))
                    .collect::<Vec<_>>()
            })
            .collect();
        liveness_findings(&lits, keys, &mut raw);
    }

    // Apply suppressions per file: an allow matches findings of its rule
    // on the same line or the line directly below it.
    let mut allows_by_path: BTreeMap<&str, Vec<Allow>> = files
        .iter()
        .zip(&lexed)
        .map(|((path, _), (toks, _))| (path.as_str(), parse_allows(toks)))
        .collect();
    raw.retain(|f| {
        if let Some(allows) = allows_by_path.get_mut(f.path.as_str()) {
            for a in allows.iter_mut() {
                if a.malformed.is_none()
                    && a.rule == f.rule
                    && (a.line == f.line || a.line + 1 == f.line)
                {
                    a.used = true;
                    return false;
                }
            }
        }
        true
    });

    let mut findings = raw;
    for (path, allows) in &allows_by_path {
        for a in allows {
            if let Some(why) = a.malformed {
                findings.push(Finding {
                    rule: "allow-syntax",
                    severity: Severity::Deny,
                    path: path.to_string(),
                    line: a.line,
                    message: format!(
                        "malformed simlint::allow({}, …): {why}; every suppression must carry \
                         a written justification",
                        a.rule
                    ),
                    snippet: a.snippet.clone(),
                });
            } else if !a.used {
                findings.push(Finding {
                    rule: "unused-allow",
                    severity: Severity::Warn,
                    path: path.to_string(),
                    line: a.line,
                    message: format!(
                        "simlint::allow({}) suppressed nothing on this or the next line; \
                         delete it or move it to the offending line",
                        a.rule
                    ),
                    snippet: a.snippet.clone(),
                });
            }
        }
    }

    // Fill snippets from the raw source lines.
    let lines_by_path: BTreeMap<&str, Vec<&str>> = files
        .iter()
        .map(|(path, source)| (path.as_str(), source.lines().collect()))
        .collect();
    for f in &mut findings {
        if f.snippet.is_empty() {
            if let Some(l) = lines_by_path
                .get(f.path.as_str())
                .and_then(|ls| ls.get(f.line.saturating_sub(1)))
            {
                f.snippet = l.trim().chars().take(120).collect();
            }
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> KeyTable {
        let mut t = KeyTable::default();
        t.metric_keys.insert("dmamem.wakes".into());
        t.prof_keys.insert("dmamem.prof.events".into());
        t.event_kinds.insert("epoch_tick".into());
        t.trace_keys.insert("dmamem.trace.wakeup".into());
        t
    }

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_files(&[(path.to_string(), src.to_string())], &table())
    }

    #[test]
    fn nondet_iter_fires_in_sim_scope_only() {
        let src = "fn f() { let m = std::collections::HashMap::<u32, u32>::new(); }\n";
        assert!(lint("crates/dmamem/src/x.rs", src)
            .iter()
            .any(|f| f.rule == "nondet-iter"));
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
        // par/obs export paths are exempt.
        assert!(lint("crates/simcore/src/par.rs", src).is_empty());
        assert!(lint("crates/simcore/src/obs/metrics.rs", src).is_empty());
        assert!(!lint("crates/simcore/src/time.rs", src).is_empty());
    }

    #[test]
    fn use_lines_and_tests_are_exempt() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    fn t() { let m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(lint("crates/dmamem/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_string_or_comment_is_not_code() {
        let src = "fn f() { let s = \"HashMap\"; } // HashMap in prose\n";
        assert!(lint("crates/dmamem/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "\
// simlint::allow(nondet-iter, \"lookup-only map, never iterated\")\n\
fn f() { let m: std::collections::HashMap<u8, u8> = Default::default(); }\n\
fn g() { let s: std::collections::HashSet<u8> = Default::default(); } // simlint::allow(nondet-iter, \"also fine\")\n";
        assert!(lint("crates/dmamem/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_deny_finding() {
        let src = "// simlint::allow(nondet-iter)\nfn f() { let m: std::collections::HashMap<u8, u8> = Default::default(); }\n";
        let fs = lint("crates/dmamem/src/x.rs", src);
        assert!(fs
            .iter()
            .any(|f| f.rule == "allow-syntax" && f.severity == Severity::Deny));
        // The allow is malformed, so it does NOT suppress.
        assert!(fs.iter().any(|f| f.rule == "nondet-iter"));
    }

    #[test]
    fn unused_allow_is_a_warning() {
        let src = "// simlint::allow(wall-clock, \"no longer needed\")\nfn f() {}\n";
        let fs = lint("crates/dmamem/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "unused-allow");
        assert_eq!(fs[0].severity, Severity::Warn);
    }

    #[test]
    fn wall_clock_scope() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(lint("crates/simcore/src/time.rs", src)
            .iter()
            .any(|f| f.rule == "wall-clock"));
        assert!(lint("crates/bench/src/sweep.rs", src).is_empty());
        assert!(lint("crates/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn ambient_random_fires() {
        let src = "fn f() { let r = rand::thread_rng(); }\n";
        assert!(lint("crates/trace/src/x.rs", src)
            .iter()
            .any(|f| f.rule == "ambient-random"));
    }

    #[test]
    fn float_cmp_sort_and_literal_eq() {
        let sort = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert!(lint("crates/iobus/src/x.rs", sort)
            .iter()
            .any(|f| f.rule == "float-cmp"));
        let eq = "fn f(x: f64) -> bool { x == 0.5 }\n";
        assert!(lint("crates/dmamem/src/x.rs", eq)
            .iter()
            .any(|f| f.rule == "float-cmp"));
        // Integer equality is fine; tuple-field access is not a float.
        assert!(lint(
            "crates/dmamem/src/x.rs",
            "fn f(x: u64) -> bool { x == 0 }\n"
        )
        .is_empty());
        assert!(lint(
            "crates/dmamem/src/x.rs",
            "fn f(p: (u8, u8)) -> bool { p.0 == p.1 }\n"
        )
        .is_empty());
        // total_cmp is the fix.
        assert!(lint(
            "crates/iobus/src/x.rs",
            "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n"
        )
        .is_empty());
    }

    #[test]
    fn float_eq_zero_sentinel_is_exempt() {
        // The exact-zero division-guard idiom no longer needs an allow.
        let src = "fn f(total: f64) -> f64 { if total == 0.0 { return 0.0; } 1.0 / total }\n";
        assert!(lint("crates/mempower/src/x.rs", src).is_empty());
        // Exponent and underscore forms of nonzero still fire.
        let src = "fn f(x: f64) -> bool { x != 1e-9 }\n";
        assert!(lint("crates/mempower/src/x.rs", src)
            .iter()
            .any(|f| f.rule == "float-cmp"));
    }

    #[test]
    fn panic_reachability_replaces_path_scoping() {
        // A panic in a root file fn is denied…
        let src = "fn f(v: &[u8]) -> u8 { let x = v.first().unwrap(); v[0] + x }\n";
        let fs = lint("crates/dmamem/src/system.rs", src);
        assert!(fs
            .iter()
            .any(|f| f.rule == "panic-path" && f.severity == Severity::Deny));
        assert!(fs
            .iter()
            .any(|f| f.rule == "panic-path" && f.severity == Severity::Warn));
        // …and in a non-root file it is denied exactly when reachable.
        let reached = lint_files(
            &[
                (
                    "crates/dmamem/src/system.rs".into(),
                    "fn run() { helper(); }\n".into(),
                ),
                (
                    "crates/dmamem/src/metrics.rs".into(),
                    "fn helper() { x.unwrap(); }\nfn orphan() { y.unwrap(); }\n".into(),
                ),
            ],
            &table(),
        );
        let denies: Vec<usize> = reached
            .iter()
            .filter(|f| f.rule == "panic-path" && f.severity == Severity::Deny)
            .map(|f| f.line)
            .collect();
        assert_eq!(denies, vec![1]);
    }

    #[test]
    fn unit_safety_mixing_and_guards() {
        // Sum of time and energy: deny.
        let bad = "fn f(a: u64, b: f64) -> f64 { self.idle_ns + self.used_mj }\n";
        assert!(lint("crates/dmamem/src/x.rs", bad)
            .iter()
            .any(|f| f.rule == "unit-safety"));
        // power × time is a legal derived quantity on either side.
        let ok = "fn f() { self.energy_mj += power_mw * dt.as_secs_f64(); }\n";
        assert!(lint("crates/mempower/src/x.rs", ok).is_empty());
        // Same class comparisons are fine.
        let ok = "fn f() -> bool { self.idle_ns >= self.limit_ns }\n";
        assert!(lint("crates/dmamem/src/x.rs", ok).is_empty());
        // Unclassified counters never fire.
        let ok = "fn f() -> bool { self.wakes > self.sleeps }\n";
        assert!(lint("crates/dmamem/src/x.rs", ok).is_empty());
    }

    #[test]
    fn unit_safety_accrue_literal() {
        let bad = "fn f(b: &mut B) { b.accrue(Cat::Active, 300.0, dt); }\n";
        assert!(lint("crates/mempower/src/x.rs", bad)
            .iter()
            .any(|f| f.rule == "unit-safety"));
        // A named constant is the fix; int literals (counts) are fine.
        let ok = "fn f(b: &mut B) { b.accrue(Cat::Active, ACTIVE_MW, dt); }\n";
        assert!(lint("crates/mempower/src/x.rs", ok).is_empty());
        // Tests may use literal wattages freely.
        let test = "#[cfg(test)]\nmod tests {\n    fn t(b: &mut B) { b.accrue(Cat::Active, 300.0, dt); }\n}\n";
        assert!(lint("crates/mempower/src/x.rs", test).is_empty());
    }

    #[test]
    fn obs_key_checks_literals_even_in_tests() {
        let good = "fn t() { assert!(reg.counter(\"dmamem.wakes\").is_some()); }\n";
        assert!(lint("crates/bench/tests/x.rs", good).is_empty());
        // simlint::allow(obs-key, "deliberately misspelled key: negative test input")
        let bad = "fn t() { assert!(reg.counter(\"dmamem.wakse\").is_some()); }\n";
        assert!(lint("crates/bench/tests/x.rs", bad)
            .iter()
            .any(|f| f.rule == "obs-key"));
        // simlint::allow(obs-key, "deliberately misspelled event kind: negative test input")
        let bad_kind = "fn t() { assert!(l.contains(r#\"\"kind\":\"epoch_tik\"\"#)); }\n";
        assert!(lint("crates/dmamem/src/obs.rs", bad_kind)
            .iter()
            .any(|f| f.rule == "obs-key"));
        let good_kind = "fn t() { assert!(l.contains(r#\"\"kind\":\"epoch_tick\"\"#)); }\n";
        assert!(lint("crates/dmamem/src/obs.rs", good_kind).is_empty());
    }

    #[test]
    fn obs_key_routes_trace_namespace_to_trace_table() {
        let good = "fn t() { assert!(json.contains(\"dmamem.trace.wakeup\")); }\n";
        assert!(lint("crates/bench/tests/x.rs", good).is_empty());
        // simlint::allow(obs-key, "deliberately unregistered trace key: negative test input")
        let bad = "fn t() { assert!(json.contains(\"dmamem.trace.wakeups\")); }\n";
        assert!(lint("crates/bench/tests/x.rs", bad)
            .iter()
            .any(|f| f.rule == "obs-key"));
        // The bare namespace is prose, not a key.
        let prose = "// spans live under the dmamem.trace namespace\nfn t() {}\n";
        assert!(lint("crates/bench/tests/x.rs", prose).is_empty());
    }

    #[test]
    fn obs_key_routes_prof_namespace_to_prof_table() {
        let good = "fn t() { assert!(reg.counter(\"dmamem.prof.events\").is_some()); }\n";
        assert!(lint("crates/bench/tests/x.rs", good).is_empty());
        // simlint::allow(obs-key, "deliberately misspelled prof key: negative test input")
        let bad = "fn t() { assert!(reg.counter(\"dmamem.prof.evnets\").is_some()); }\n";
        assert!(lint("crates/bench/tests/x.rs", bad)
            .iter()
            .any(|f| f.rule == "obs-key"));
    }

    #[test]
    fn trailing_punctuation_does_not_break_keys() {
        let src = "fn t() { assert!(csv.contains(\"dmamem.wakes,\")); }\n";
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn obs_key_liveness_denies_dead_keys() {
        // simlint::allow(obs-key, "deliberately unregistered key: liveness-test input")
        let obs = "\
pub const METRIC_KEYS: &[&str] = &[
    \"dmamem.wakes\",
    \"dmamem.dead_key\",
];
pub const PROF_KEYS: &[&str] = &[\"dmamem.prof.events\"];
pub const EVENT_KINDS: &[&str] = &[\"epoch_tick\"];
pub const TRACE_KEYS: &[&str] = &[\"dmamem.trace.wakeup\"];
fn reg(r: &mut R) {
    r.counter(\"dmamem.wakes\");
    r.counter(\"dmamem.prof.events\");
    r.kind(\"epoch_tick\");
    r.span(\"dmamem.trace.wakeup\");
}
";
        let keys = KeyTable::from_obs_source(obs).unwrap();
        let fs = lint_files(&[(crate::OBS_SOURCE.to_string(), obs.to_string())], &keys);
        let dead: Vec<&Finding> = fs.iter().filter(|f| f.rule == "obs-key-live").collect();
        assert_eq!(dead.len(), 1, "{fs:?}");
        assert_eq!(dead[0].line, 3);
        // simlint::allow(obs-key, "asserting on the deliberately dead key from the input above")
        assert!(dead[0].message.contains("dmamem.dead_key"));
        assert_eq!(dead[0].severity, Severity::Deny);
    }

    #[test]
    fn obs_key_liveness_counts_cross_file_emissions() {
        let obs = "\
pub const METRIC_KEYS: &[&str] = &[\"dmamem.wakes\"];
pub const PROF_KEYS: &[&str] = &[\"dmamem.prof.events\"];
pub const EVENT_KINDS: &[&str] = &[\"epoch_tick\"];
pub const TRACE_KEYS: &[&str] = &[\"dmamem.trace.wakeup\"];
";
        let emit = "fn e(r: &mut R) {\n\
            r.counter(\"dmamem.wakes\");\n\
            r.counter(\"dmamem.prof.events\");\n\
            r.line(\"{\\\"kind\\\":\\\"epoch_tick\\\"}\");\n\
            r.span(\"dmamem.trace.wakeup\");\n\
        }\n";
        let keys = KeyTable::from_obs_source(obs).unwrap();
        let fs = lint_files(
            &[
                (crate::OBS_SOURCE.to_string(), obs.to_string()),
                ("crates/dmamem/src/metrics.rs".to_string(), emit.to_string()),
            ],
            &keys,
        );
        assert!(
            !fs.iter().any(|f| f.rule == "obs-key-live"),
            "all keys are emitted: {fs:?}"
        );
    }
}
