//! The six determinism & invariant rules, allow-directive parsing, and
//! suppression application.
//!
//! Rules are pattern passes over [`scan::Line`] records (comments and
//! string contents already masked out of `code`), scoped by workspace
//! path. Every rule can be suppressed per line with a `simlint::allow`
//! comment naming the rule plus a quoted reason — the reason string is
//! mandatory; a reasonless allow is itself a `deny` finding.

use crate::keytable::KeyTable;
use crate::scan::Line;

/// Finding severity: `Deny` findings fail the run, `Warn` findings are
/// reported (and serialized) but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, never fails the run.
    Warn,
    /// Enforced: any deny finding makes `simlint` exit nonzero.
    Deny,
}

impl Severity {
    /// Stable lowercase tag used in output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (e.g. `nondet-iter`).
    pub rule: &'static str,
    /// Whether the finding fails the run.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
    /// The offending line's code, trimmed.
    pub snippet: String,
}

/// Rule registry: `(name, what it catches)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "nondet-iter",
        "HashMap/HashSet in simulation crates: iteration order depends on the hash seed",
    ),
    (
        "wall-clock",
        "Instant::now/SystemTime outside criterion/bench: wall time must never reach sim state",
    ),
    (
        "ambient-random",
        "RNG construction not routed through simcore::rng seeded types",
    ),
    (
        "float-cmp",
        "sort via partial_cmp (use total_cmp) or direct == on floats in accounting code",
    ),
    (
        "panic-path",
        "unwrap/expect/panic!/indexing in engine hot paths (system, controllers, chip)",
    ),
    (
        "obs-key",
        "metric/event key literal not in the dmamem::obs registered key table",
    ),
    (
        "allow-syntax",
        "malformed simlint::allow directive (missing or empty justification, unknown rule)",
    ),
    (
        "unused-allow",
        "simlint::allow directive that suppressed nothing",
    ),
];

const LINT_RULE_NAMES: &[&str] = &[
    "nondet-iter",
    "wall-clock",
    "ambient-random",
    "float-cmp",
    "panic-path",
    "obs-key",
];

fn canonical_rule(name: &str) -> Option<&'static str> {
    LINT_RULE_NAMES.iter().find(|r| **r == name).copied()
}

// ---------------------------------------------------------------------------
// Path scopes
// ---------------------------------------------------------------------------

/// Simulation-crate sources: everything that feeds simulated state.
/// `simcore`'s `par` (host thread pool) and `obs` (host-side export)
/// modules are excluded — they are deliberately allowed to touch
/// host-order constructs because nothing in them feeds back into sim
/// results.
pub fn is_sim_path(p: &str) -> bool {
    const SIM: &[&str] = &[
        "crates/dmamem/src/",
        "crates/mempower/src/",
        "crates/iobus/src/",
        "crates/disksim/src/",
        "crates/trace/src/",
    ];
    if SIM.iter().any(|pre| p.starts_with(pre)) {
        return true;
    }
    p.starts_with("crates/simcore/src/")
        && p != "crates/simcore/src/par.rs"
        && p != "crates/simcore/src/obs.rs"
        && !p.starts_with("crates/simcore/src/obs/")
}

/// Wall-clock reads are legitimate only in the bench harness and the
/// criterion shim.
pub fn is_wall_clock_scope(p: &str) -> bool {
    !p.starts_with("crates/criterion/") && !p.starts_with("crates/bench/")
}

/// Engine hot paths where a panic aborts a whole sweep batch.
pub fn is_panic_scope(p: &str) -> bool {
    p == "crates/dmamem/src/system.rs"
        || p.starts_with("crates/dmamem/src/controller/")
        || p == "crates/mempower/src/chip.rs"
}

/// Accounting code (slack ledger, energy/metric accounting) where exact
/// float equality is almost always a latent bug.
pub fn is_float_eq_scope(p: &str) -> bool {
    p.starts_with("crates/dmamem/src/") || p.starts_with("crates/mempower/src/")
}

/// Test-only paths: integration tests, benches, examples, fixtures.
/// Only `obs-key` applies there.
pub fn is_test_path(p: &str) -> bool {
    p.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
}

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Allow {
    rule: String,
    line: usize, // 1-based
    used: bool,
    malformed: Option<&'static str>,
}

fn parse_allows(lines: &[Line]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut rest = line.comment.as_str();
        while let Some(at) = rest.find("simlint::allow(") {
            rest = &rest[at + "simlint::allow(".len()..];
            let rule: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            let after_rule = rest[rule.len()..].trim_start();
            let malformed = if canonical_rule(&rule).is_none() {
                Some("unknown rule name")
            } else if let Some(tail) = after_rule.strip_prefix(',') {
                let tail = tail.trim_start();
                match tail
                    .strip_prefix('"')
                    .and_then(|t| t.find('"').map(|e| &t[..e]))
                {
                    Some(reason) if reason.trim().is_empty() => {
                        Some("justification string is empty")
                    }
                    Some(_) => None,
                    None => Some("justification must be a quoted string"),
                }
            } else {
                Some("missing justification: write simlint::allow(rule, \"why\")")
            };
            allows.push(Allow {
                rule,
                line: idx + 1,
                used: false,
                malformed,
            });
        }
    }
    allows
}

// ---------------------------------------------------------------------------
// Pattern helpers
// ---------------------------------------------------------------------------

/// True when `code` compares a float literal with `==` or `!=`.
fn has_float_literal_eq(code: &str) -> bool {
    let b = code.as_bytes();
    for i in 0..b.len().saturating_sub(1) {
        let is_eq = b[i] == b'=' && b[i + 1] == b'=' && (i == 0 || !is_op_byte(b[i - 1]));
        let is_ne = b[i] == b'!' && b[i + 1] == b'=';
        if !(is_eq || is_ne) {
            continue;
        }
        if float_literal_after(b, i + 2) || float_literal_before(b, i) {
            return true;
        }
    }
    false
}

fn is_op_byte(c: u8) -> bool {
    matches!(
        c,
        b'=' | b'<' | b'>' | b'!' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
    )
}

fn float_literal_after(b: &[u8], mut i: usize) -> bool {
    while i < b.len() && b[i] == b' ' {
        i += 1;
    }
    let start = i;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    i > start && i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()
}

fn float_literal_before(b: &[u8], eq_at: usize) -> bool {
    let mut i = eq_at;
    while i > 0 && b[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0 && (b[i - 1].is_ascii_digit() || b[i - 1] == b'.' || b[i - 1] == b'_') {
        i -= 1;
    }
    let token = &b[i..end];
    !token.is_empty()
        && token[0].is_ascii_digit()
        && token.contains(&b'.')
        && (i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_' || b[i - 1] == b'.'))
}

/// True when `code` has a slice/array index expression (`expr[...]`).
fn has_index_expr(code: &str) -> bool {
    let b = code.as_bytes();
    for i in 0..b.len() {
        if b[i] != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 && b[j - 1] == b' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let p = b[j - 1];
        if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' {
            return true;
        }
    }
    false
}

/// `dmamem.*` tokens inside a string literal that are not registered
/// metric keys (`dmamem.trace.*` tokens check against the trace-key
/// table, `dmamem.prof.*` against the engine self-profiling key table),
/// plus `"kind":"…"` tags not in the event-kind table.
fn bad_obs_keys(lit: &str, keys: &KeyTable) -> Vec<String> {
    let norm = lit.replace("\\\"", "\"");
    let mut bad = Vec::new();
    let mut rest = norm.as_str();
    while let Some(at) = rest.find("dmamem.") {
        let token: String = rest[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
            .collect();
        rest = &rest[at + token.len().max(7)..];
        let token = token.trim_end_matches('.');
        // Bare namespace mentions ("dmamem", "dmamem.trace",
        // "dmamem.prof") are prose, not keys.
        if token == "dmamem" || token == "dmamem.trace" || token == "dmamem.prof" {
            continue;
        }
        let table = if token.starts_with("dmamem.trace.") {
            &keys.trace_keys
        } else if token.starts_with("dmamem.prof.") {
            &keys.prof_keys
        } else {
            &keys.metric_keys
        };
        if !table.contains(token) {
            bad.push(token.to_string());
        }
    }
    let mut rest = norm.as_str();
    while let Some(at) = rest.find("\"kind\":\"") {
        let tail = &rest[at + "\"kind\":\"".len()..];
        let kind: String = tail.chars().take_while(|c| *c != '"').collect();
        if !kind.is_empty() && !keys.event_kinds.contains(&kind) {
            bad.push(format!("kind:{kind}"));
        }
        rest = tail;
    }
    bad
}

// ---------------------------------------------------------------------------
// The lint pass
// ---------------------------------------------------------------------------

/// Runs every rule over scanned `lines` of the file at workspace-relative
/// `rel_path`, applies `simlint::allow` suppressions, and returns the
/// surviving findings sorted by line.
pub fn lint_lines(rel_path: &str, lines: &[Line], keys: &KeyTable) -> Vec<Finding> {
    let test_file = is_test_path(rel_path);
    let sim = is_sim_path(rel_path);
    let wall = is_wall_clock_scope(rel_path);
    let hot = is_panic_scope(rel_path);
    let float_eq = is_float_eq_scope(rel_path);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, severity: Severity, n: usize, msg: String, code: &str| {
        raw.push(Finding {
            rule,
            severity,
            path: rel_path.to_string(),
            line: n,
            message: msg,
            snippet: code.trim().chars().take(120).collect(),
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        let code = line.code.as_str();
        let in_test = test_file || line.in_test;

        if !in_test {
            if sim
                && (code.contains("HashMap") || code.contains("HashSet"))
                && !code.trim_start().starts_with("use ")
                && !code.trim_start().starts_with("pub use ")
            {
                push(
                    "nondet-iter",
                    Severity::Deny,
                    n,
                    "HashMap/HashSet in simulation code: iteration order is nondeterministic \
                     across runs; use BTreeMap/BTreeSet or sort before iterating"
                        .into(),
                    code,
                );
            }
            if wall && (code.contains("Instant::now") || code.contains("SystemTime")) {
                push(
                    "wall-clock",
                    Severity::Deny,
                    n,
                    "wall-clock read outside criterion/bench: host time must never reach \
                     simulation state"
                        .into(),
                    code,
                );
            }
            if sim {
                const RNG_PATTERNS: &[&str] = &[
                    "thread_rng",
                    "from_entropy",
                    "OsRng",
                    "getrandom",
                    "StdRng",
                    "SmallRng",
                    "fastrand",
                    "rand::",
                    "RandomState",
                ];
                if let Some(pat) = RNG_PATTERNS.iter().find(|p| code.contains(**p)) {
                    push(
                        "ambient-random",
                        Severity::Deny,
                        n,
                        format!(
                            "ambient RNG `{pat}`: all randomness must flow through \
                             simcore::rng seeded types"
                        ),
                        code,
                    );
                }
            }
            if sim && code.contains("partial_cmp") {
                let window = idx.saturating_sub(3)..=idx;
                let sorting = window.clone().any(|w| {
                    let c = lines[w].code.as_str();
                    [
                        "sort_by",
                        "sort_unstable_by",
                        "max_by",
                        "min_by",
                        "binary_search_by",
                    ]
                    .iter()
                    .any(|t| c.contains(t))
                });
                if sorting {
                    push(
                        "float-cmp",
                        Severity::Deny,
                        n,
                        "float ordering via partial_cmp: NaN breaks the comparator and the \
                         sort order; use f64::total_cmp"
                            .into(),
                        code,
                    );
                }
            }
            if float_eq && has_float_literal_eq(code) {
                push(
                    "float-cmp",
                    Severity::Deny,
                    n,
                    "direct equality against a float literal in accounting code; compare \
                     with an explicit tolerance (or allow an exact-sentinel guard with a reason)"
                        .into(),
                    code,
                );
            }
            if hot {
                const PANICKY: &[&str] = &[
                    ".unwrap()",
                    ".expect(",
                    "panic!(",
                    "unreachable!(",
                    "todo!(",
                    "unimplemented!(",
                ];
                if let Some(pat) = PANICKY.iter().find(|p| code.contains(**p)) {
                    push(
                        "panic-path",
                        Severity::Deny,
                        n,
                        format!(
                            "`{}` in an engine hot path: a panic here aborts a whole sweep \
                             batch; return a typed error or allow with the invariant that \
                             makes it unreachable",
                            pat.trim_matches(['.', '('])
                        ),
                        code,
                    );
                }
                if has_index_expr(code) {
                    push(
                        "panic-path",
                        Severity::Warn,
                        n,
                        "slice/array indexing in an engine hot path can panic; prefer get() \
                         where the index is not invariant-checked"
                            .into(),
                        code,
                    );
                }
            }
        }

        // obs-key applies everywhere, tests included: a typo'd key in a
        // test assertion silently weakens the slack audit replay.
        for lit in &line.literals {
            for bad in bad_obs_keys(lit, keys) {
                push(
                    "obs-key",
                    Severity::Deny,
                    n,
                    format!(
                        "`{bad}` is not in the dmamem::obs registered key table \
                         (METRIC_KEYS/EVENT_KINDS); typo'd keys silently drop streams \
                         from the audit replay"
                    ),
                    code,
                );
            }
        }
    }

    // Apply suppressions: an allow matches findings of its rule on the
    // same line or the line directly below it.
    let mut allows = parse_allows(lines);
    raw.retain(|f| {
        for a in allows.iter_mut() {
            if a.malformed.is_none()
                && a.rule == f.rule
                && (a.line == f.line || a.line + 1 == f.line)
            {
                a.used = true;
                return false;
            }
        }
        true
    });

    let mut findings = raw;
    for a in &allows {
        if let Some(why) = a.malformed {
            findings.push(Finding {
                rule: "allow-syntax",
                severity: Severity::Deny,
                path: rel_path.to_string(),
                line: a.line,
                message: format!(
                    "malformed simlint::allow({}, …): {why}; every suppression must carry \
                     a written justification",
                    a.rule
                ),
                snippet: lines[a.line - 1].comment.trim().chars().take(120).collect(),
            });
        } else if !a.used {
            findings.push(Finding {
                rule: "unused-allow",
                severity: Severity::Warn,
                path: rel_path.to_string(),
                line: a.line,
                message: format!(
                    "simlint::allow({}) suppressed nothing on this or the next line; \
                     delete it or move it to the offending line",
                    a.rule
                ),
                snippet: lines[a.line - 1].comment.trim().chars().take(120).collect(),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn table() -> KeyTable {
        let mut t = KeyTable::default();
        t.metric_keys.insert("dmamem.wakes".into());
        t.prof_keys.insert("dmamem.prof.events".into());
        t.event_kinds.insert("epoch_tick".into());
        t.trace_keys.insert("dmamem.trace.wakeup".into());
        t
    }

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_lines(path, &scan(src), &table())
    }

    #[test]
    fn nondet_iter_fires_in_sim_scope_only() {
        let src = "fn f() { let m = std::collections::HashMap::<u32, u32>::new(); }\n";
        assert!(lint("crates/dmamem/src/x.rs", src)
            .iter()
            .any(|f| f.rule == "nondet-iter"));
        assert!(lint("crates/bench/src/x.rs", src).is_empty());
        // par/obs export paths are exempt.
        assert!(lint("crates/simcore/src/par.rs", src).is_empty());
        assert!(lint("crates/simcore/src/obs/metrics.rs", src).is_empty());
        assert!(!lint("crates/simcore/src/time.rs", src).is_empty());
    }

    #[test]
    fn use_lines_and_tests_are_exempt() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    fn t() { let m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(lint("crates/dmamem/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "\
// simlint::allow(nondet-iter, \"lookup-only map, never iterated\")\n\
fn f() { let m: std::collections::HashMap<u8, u8> = Default::default(); }\n\
fn g() { let s: std::collections::HashSet<u8> = Default::default(); } // simlint::allow(nondet-iter, \"also fine\")\n";
        assert!(lint("crates/dmamem/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_deny_finding() {
        let src = "// simlint::allow(nondet-iter)\nfn f() { let m: std::collections::HashMap<u8, u8> = Default::default(); }\n";
        let fs = lint("crates/dmamem/src/x.rs", src);
        assert!(fs
            .iter()
            .any(|f| f.rule == "allow-syntax" && f.severity == Severity::Deny));
        // The allow is malformed, so it does NOT suppress.
        assert!(fs.iter().any(|f| f.rule == "nondet-iter"));
    }

    #[test]
    fn unused_allow_is_a_warning() {
        let src = "// simlint::allow(wall-clock, \"no longer needed\")\nfn f() {}\n";
        let fs = lint("crates/dmamem/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "unused-allow");
        assert_eq!(fs[0].severity, Severity::Warn);
    }

    #[test]
    fn wall_clock_scope() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(lint("crates/simcore/src/time.rs", src)
            .iter()
            .any(|f| f.rule == "wall-clock"));
        assert!(lint("crates/bench/src/sweep.rs", src).is_empty());
        assert!(lint("crates/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn ambient_random_fires() {
        let src = "fn f() { let r = rand::thread_rng(); }\n";
        assert!(lint("crates/trace/src/x.rs", src)
            .iter()
            .any(|f| f.rule == "ambient-random"));
    }

    #[test]
    fn float_cmp_sort_and_literal_eq() {
        let sort = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert!(lint("crates/iobus/src/x.rs", sort)
            .iter()
            .any(|f| f.rule == "float-cmp"));
        let eq = "fn f(x: f64) -> bool { x == 0.5 }\n";
        assert!(lint("crates/dmamem/src/x.rs", eq)
            .iter()
            .any(|f| f.rule == "float-cmp"));
        // Integer equality is fine; tuple-field access is not a float.
        assert!(lint(
            "crates/dmamem/src/x.rs",
            "fn f(x: u64) -> bool { x == 0 }\n"
        )
        .is_empty());
        assert!(lint(
            "crates/dmamem/src/x.rs",
            "fn f(p: (u8, u8)) -> bool { p.0 == p.1 }\n"
        )
        .is_empty());
        // total_cmp is the fix.
        assert!(lint(
            "crates/iobus/src/x.rs",
            "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n"
        )
        .is_empty());
    }

    #[test]
    fn panic_path_deny_and_index_warn() {
        let src = "fn f(v: &[u8]) -> u8 { let x = v.first().unwrap(); v[0] + x }\n";
        let fs = lint("crates/dmamem/src/system.rs", src);
        assert!(fs
            .iter()
            .any(|f| f.rule == "panic-path" && f.severity == Severity::Deny));
        assert!(fs
            .iter()
            .any(|f| f.rule == "panic-path" && f.severity == Severity::Warn));
        // Outside hot paths the rule is silent.
        assert!(lint("crates/dmamem/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn obs_key_checks_literals_even_in_tests() {
        let good = "fn t() { assert!(reg.counter(\"dmamem.wakes\").is_some()); }\n";
        assert!(lint("crates/bench/tests/x.rs", good).is_empty());
        // simlint::allow(obs-key, "deliberately misspelled key: negative test input")
        let bad = "fn t() { assert!(reg.counter(\"dmamem.wakse\").is_some()); }\n";
        assert!(lint("crates/bench/tests/x.rs", bad)
            .iter()
            .any(|f| f.rule == "obs-key"));
        // simlint::allow(obs-key, "deliberately misspelled event kind: negative test input")
        let bad_kind = "fn t() { assert!(l.contains(r#\"\"kind\":\"epoch_tik\"\"#)); }\n";
        assert!(lint("crates/dmamem/src/obs.rs", bad_kind)
            .iter()
            .any(|f| f.rule == "obs-key"));
        let good_kind = "fn t() { assert!(l.contains(r#\"\"kind\":\"epoch_tick\"\"#)); }\n";
        assert!(lint("crates/dmamem/src/obs.rs", good_kind).is_empty());
    }

    #[test]
    fn obs_key_routes_trace_namespace_to_trace_table() {
        // Registered trace key passes; unregistered one denies even
        // though the metric table would never contain it.
        let good = "fn t() { assert!(json.contains(\"dmamem.trace.wakeup\")); }\n";
        assert!(lint("crates/bench/tests/x.rs", good).is_empty());
        // simlint::allow(obs-key, "deliberately unregistered trace key: negative test input")
        let bad = "fn t() { assert!(json.contains(\"dmamem.trace.wakeups\")); }\n";
        assert!(lint("crates/bench/tests/x.rs", bad)
            .iter()
            .any(|f| f.rule == "obs-key"));
        // The bare namespace is prose, not a key.
        let prose = "// spans live under the dmamem.trace namespace\nfn t() {}\n";
        assert!(lint("crates/bench/tests/x.rs", prose).is_empty());
    }

    #[test]
    fn obs_key_routes_prof_namespace_to_prof_table() {
        let good = "fn t() { assert!(reg.counter(\"dmamem.prof.events\").is_some()); }\n";
        assert!(lint("crates/bench/tests/x.rs", good).is_empty());
        // simlint::allow(obs-key, "deliberately misspelled prof key: negative test input")
        let bad = "fn t() { assert!(reg.counter(\"dmamem.prof.evnets\").is_some()); }\n";
        assert!(lint("crates/bench/tests/x.rs", bad)
            .iter()
            .any(|f| f.rule == "obs-key"));
        // The bare namespace is prose, not a key.
        let prose = "// counters live under the dmamem.prof namespace\nfn t() {}\n";
        assert!(lint("crates/bench/tests/x.rs", prose).is_empty());
    }

    #[test]
    fn trailing_punctuation_does_not_break_keys() {
        let src = "fn t() { assert!(csv.contains(\"dmamem.wakes,\")); }\n";
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    }
}
