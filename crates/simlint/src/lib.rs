//! `simlint` — workspace determinism & invariant static analysis.
//!
//! The simulator's headline results are only credible if every run is
//! bit-reproducible. PR 2 enforces that *dynamically* (proptests over
//! seeds × thread counts); this crate enforces it *statically*, on
//! every line, at CI time. It is a std-only, hand-rolled scanner (no
//! `syn` — the build environment is offline), run two ways:
//!
//! * `cargo run -p simlint` — scans the workspace, prints findings,
//!   exits nonzero on any `deny` finding (`--json FILE` for a
//!   machine-readable report);
//! * as a `#[test]` — `crates/simlint/tests/self_scan.rs` asserts the
//!   workspace is clean, so `cargo test` alone catches regressions.
//!
//! Since v2 the pipeline is token-level: a hand-rolled lexer
//! ([`lexer`]) feeds an item/scope symbol pass ([`symbols`]) that
//! builds a per-workspace function call graph ([`callgraph`]). Eight
//! rules, each grounded in a real hazard class of this codebase (see
//! [`rules::RULES`]): `nondet-iter`, `wall-clock`, `ambient-random`,
//! `float-cmp`, `panic-path` (call-graph reachability from the engine
//! hot loop), `unit-safety`, `obs-key`, and `obs-key-live`. Suppression
//! is per line via a `simlint::allow` comment naming the rule and a
//! quoted reason — the written justification is mandatory and its
//! absence is itself a finding.

pub mod callgraph;
pub mod keytable;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use keytable::KeyTable;
pub use report::Report;
pub use rules::{Finding, Severity};

/// Lints one file's source as if it lived at workspace-relative
/// `rel_path` (path determines rule scopes, including call-graph roots).
/// Exposed for fixture tests.
pub fn lint_source(rel_path: &str, source: &str, keys: &KeyTable) -> Vec<Finding> {
    lint_sources(&[(rel_path.to_string(), source.to_string())], keys)
}

/// Lints a set of `(workspace-relative path, source)` files as one
/// unit: the panic-reachability call graph and obs-key liveness see all
/// of them together. Exposed for the call-graph and liveness tests.
pub fn lint_sources(files: &[(String, String)], keys: &KeyTable) -> Vec<Finding> {
    rules::lint_files(files, keys)
}

/// Relative path of the obs-key source of truth.
pub const OBS_SOURCE: &str = "crates/dmamem/src/obs.rs";

/// Lints every `.rs` file under `root` (the workspace directory),
/// excluding `target/`, VCS internals, and simlint's own seeded-violation
/// fixtures.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let obs_path = root.join(OBS_SOURCE);
    let obs_source = fs::read_to_string(&obs_path)?;
    let keys = KeyTable::from_obs_source(&obs_source)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort(); // deterministic scan order — simlint practices what it preaches

    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_default();
        inputs.push((rel_str, source));
    }
    // One pass over everything: the panic-reachability call graph and
    // the obs-key liveness rule need the whole workspace at once.
    let mut report = Report {
        files_scanned: inputs.len(),
        ..Report::default()
    };
    report.findings = rules::lint_files(&inputs, &keys);
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` holds deliberately-violating lint inputs; they
            // are linted explicitly by simlint's own tests instead.
            if matches!(name.as_ref(), "target" | ".git" | ".github" | "fixtures") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_ties_scanner_to_rules() {
        let mut keys = KeyTable::default();
        keys.metric_keys.insert("dmamem.wakes".into());
        let src = "fn f() { let t = std::time::Instant::now(); } // not in a string\n";
        let fs = lint_source("crates/simcore/src/time.rs", src, &keys);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "wall-clock");
        // The same pattern inside a string literal is NOT code.
        let masked = "fn f() { let s = \"Instant::now\"; }\n";
        assert!(lint_source("crates/simcore/src/time.rs", masked, &keys).is_empty());
    }
}
