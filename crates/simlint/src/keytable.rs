//! The registered observability key table, parsed out of
//! `crates/dmamem/src/obs.rs` so the `obs-key` rule checks against the
//! same source of truth the engine registers from (the `METRIC_KEYS`,
//! `PROF_KEYS`, `EVENT_KINDS`, and `TRACE_KEYS` consts; dmamem's own
//! unit tests pin those consts to the actual registrations).
//!
//! Since simlint v2 the parse also records *where* each table and each
//! key lives (line numbers), which the `obs-key-live` rule needs: a key
//! is only live if it occurs in a string literal *outside* the table
//! declarations, and a dead key is denied at its own table line.

use std::collections::BTreeSet;

/// One parsed key-table const: its source extent and every key with the
/// line it is declared on.
#[derive(Debug, Clone)]
pub struct TableSpan {
    /// The const's name (`METRIC_KEYS`, …).
    pub const_name: String,
    /// 1-based first line of the declaration.
    pub start_line: usize,
    /// 1-based last line (the `];`).
    pub end_line: usize,
    /// `(key, line)` for every string literal in the table.
    pub entries: Vec<(String, usize)>,
}

/// Registered metric keys, event kinds, and trace span/counter names.
#[derive(Debug, Clone, Default)]
pub struct KeyTable {
    /// Every `dmamem.*` metric key the engine registers.
    pub metric_keys: BTreeSet<String>,
    /// Every `dmamem.prof.*` engine self-profiling counter key.
    pub prof_keys: BTreeSet<String>,
    /// Every event `kind` tag the engine emits.
    pub event_kinds: BTreeSet<String>,
    /// Every `dmamem.trace.*` span, marker, and counter name the causal
    /// tracer emits.
    pub trace_keys: BTreeSet<String>,
    /// Source extents of the four consts (empty for hand-built tables,
    /// which disables the `obs-key-live` rule).
    pub spans: Vec<TableSpan>,
}

impl KeyTable {
    /// Parses the key table from the source text of `dmamem/src/obs.rs`:
    /// all string literals between a named const's `&[` and the closing
    /// `];`, with their line positions.
    pub fn from_obs_source(source: &str) -> Result<KeyTable, String> {
        let metric = const_span(source, "METRIC_KEYS")?;
        let prof = const_span(source, "PROF_KEYS")?;
        let kinds = const_span(source, "EVENT_KINDS")?;
        let trace = const_span(source, "TRACE_KEYS")?;
        let keys_of = |s: &TableSpan| s.entries.iter().map(|(k, _)| k.clone()).collect();
        Ok(KeyTable {
            metric_keys: keys_of(&metric),
            prof_keys: keys_of(&prof),
            event_kinds: keys_of(&kinds),
            trace_keys: keys_of(&trace),
            spans: vec![metric, prof, kinds, trace],
        })
    }
}

fn line_at(source: &str, byte: usize) -> usize {
    source[..byte].bytes().filter(|&b| b == b'\n').count() + 1
}

fn const_span(source: &str, name: &str) -> Result<TableSpan, String> {
    // Anchor on the declaration, not doc-comment mentions of the name.
    let decl = format!("const {name}");
    let start = source
        .find(&decl)
        .ok_or_else(|| format!("`{decl}` not found in dmamem obs source"))?;
    let tail = &source[start..];
    let end = tail
        .find("];")
        .ok_or_else(|| format!("const `{name}` has no closing `];`"))?;
    let body = &tail[..end];
    let mut entries = Vec::new();
    let mut off = 0usize;
    while let Some(open) = body[off..].find('"') {
        let lit_start = off + open + 1;
        let Some(close) = body[lit_start..].find('"') else {
            break;
        };
        entries.push((
            body[lit_start..lit_start + close].to_string(),
            line_at(source, start + lit_start),
        ));
        off = lit_start + close + 1;
    }
    if entries.is_empty() {
        return Err(format!("const `{name}` contains no string literals"));
    }
    Ok(TableSpan {
        const_name: name.to_string(),
        start_line: line_at(source, start),
        end_line: line_at(source, start + end),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
pub const METRIC_KEYS: &[&str] = &[
    "dmamem.wakes",
    "dmamem.sleeps",
];
pub const PROF_KEYS: &[&str] = &["dmamem.prof.events", "dmamem.prof.heap_pushes"];
pub const EVENT_KINDS: &[&str] = &["mode_transition", "epoch_tick"];
pub const TRACE_KEYS: &[&str] = &["dmamem.trace.transfer", "dmamem.trace.wakeup"];
"#;

    #[test]
    fn parses_all_consts() {
        let t = KeyTable::from_obs_source(SAMPLE).unwrap();
        assert!(t.metric_keys.contains("dmamem.wakes"));
        assert!(t.metric_keys.contains("dmamem.sleeps"));
        assert_eq!(t.metric_keys.len(), 2);
        assert!(t.prof_keys.contains("dmamem.prof.events"));
        assert_eq!(t.prof_keys.len(), 2);
        assert!(t.event_kinds.contains("epoch_tick"));
        assert_eq!(t.event_kinds.len(), 2);
        assert!(t.trace_keys.contains("dmamem.trace.wakeup"));
        assert_eq!(t.trace_keys.len(), 2);
    }

    #[test]
    fn spans_carry_extents_and_key_lines() {
        let t = KeyTable::from_obs_source(SAMPLE).unwrap();
        assert_eq!(t.spans.len(), 4);
        let metric = &t.spans[0];
        assert_eq!(metric.const_name, "METRIC_KEYS");
        assert_eq!(metric.start_line, 2);
        assert_eq!(metric.end_line, 5);
        assert_eq!(
            metric.entries,
            vec![
                ("dmamem.wakes".to_string(), 3),
                ("dmamem.sleeps".to_string(), 4)
            ]
        );
        let prof = &t.spans[1];
        assert_eq!(prof.start_line, 6);
        assert_eq!(prof.end_line, 6);
        assert_eq!(prof.entries[1].1, 6);
    }

    #[test]
    fn missing_const_is_an_error() {
        assert!(KeyTable::from_obs_source("nothing here").is_err());
        // A source with metric keys but no TRACE_KEYS is also incomplete.
        let partial = "pub const METRIC_KEYS: &[&str] = &[\"dmamem.wakes\"];\n\
                       pub const PROF_KEYS: &[&str] = &[\"dmamem.prof.events\"];\n\
                       pub const EVENT_KINDS: &[&str] = &[\"epoch_tick\"];";
        assert!(KeyTable::from_obs_source(partial).is_err());
    }

    #[test]
    fn hand_built_default_has_no_spans() {
        assert!(KeyTable::default().spans.is_empty());
    }
}
