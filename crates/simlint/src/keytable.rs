//! The registered observability key table, parsed out of
//! `crates/dmamem/src/obs.rs` so the `obs-key` rule checks against the
//! same source of truth the engine registers from (the `METRIC_KEYS`,
//! `PROF_KEYS`, `EVENT_KINDS`, and `TRACE_KEYS` consts; dmamem's own
//! unit tests pin those consts to the actual registrations).

use std::collections::BTreeSet;

/// Registered metric keys, event kinds, and trace span/counter names.
#[derive(Debug, Clone, Default)]
pub struct KeyTable {
    /// Every `dmamem.*` metric key the engine registers.
    pub metric_keys: BTreeSet<String>,
    /// Every `dmamem.prof.*` engine self-profiling counter key.
    pub prof_keys: BTreeSet<String>,
    /// Every event `kind` tag the engine emits.
    pub event_kinds: BTreeSet<String>,
    /// Every `dmamem.trace.*` span, marker, and counter name the causal
    /// tracer emits.
    pub trace_keys: BTreeSet<String>,
}

impl KeyTable {
    /// Parses the key table from the source text of `dmamem/src/obs.rs`:
    /// all string literals between a named const's `&[` and the closing
    /// `];`.
    pub fn from_obs_source(source: &str) -> Result<KeyTable, String> {
        Ok(KeyTable {
            metric_keys: const_literals(source, "METRIC_KEYS")?,
            prof_keys: const_literals(source, "PROF_KEYS")?,
            event_kinds: const_literals(source, "EVENT_KINDS")?,
            trace_keys: const_literals(source, "TRACE_KEYS")?,
        })
    }
}

fn const_literals(source: &str, name: &str) -> Result<BTreeSet<String>, String> {
    // Anchor on the declaration, not doc-comment mentions of the name.
    let decl = format!("const {name}");
    let start = source
        .find(&decl)
        .ok_or_else(|| format!("`{decl}` not found in dmamem obs source"))?;
    let tail = &source[start..];
    let end = tail
        .find("];")
        .ok_or_else(|| format!("const `{name}` has no closing `];`"))?;
    let body = &tail[..end];
    let mut keys = BTreeSet::new();
    let mut rest = body;
    while let Some(open) = rest.find('"') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('"') else { break };
        keys.insert(after[..close].to_string());
        rest = &after[close + 1..];
    }
    if keys.is_empty() {
        return Err(format!("const `{name}` contains no string literals"));
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
pub const METRIC_KEYS: &[&str] = &[
    "dmamem.wakes",
    "dmamem.sleeps",
];
pub const PROF_KEYS: &[&str] = &["dmamem.prof.events", "dmamem.prof.heap_pushes"];
pub const EVENT_KINDS: &[&str] = &["mode_transition", "epoch_tick"];
pub const TRACE_KEYS: &[&str] = &["dmamem.trace.transfer", "dmamem.trace.wakeup"];
"#;

    #[test]
    fn parses_all_consts() {
        let t = KeyTable::from_obs_source(SAMPLE).unwrap();
        assert!(t.metric_keys.contains("dmamem.wakes"));
        assert!(t.metric_keys.contains("dmamem.sleeps"));
        assert_eq!(t.metric_keys.len(), 2);
        assert!(t.prof_keys.contains("dmamem.prof.events"));
        assert_eq!(t.prof_keys.len(), 2);
        assert!(t.event_kinds.contains("epoch_tick"));
        assert_eq!(t.event_kinds.len(), 2);
        assert!(t.trace_keys.contains("dmamem.trace.wakeup"));
        assert_eq!(t.trace_keys.len(), 2);
    }

    #[test]
    fn missing_const_is_an_error() {
        assert!(KeyTable::from_obs_source("nothing here").is_err());
        // A source with metric keys but no TRACE_KEYS is also incomplete.
        let partial = "pub const METRIC_KEYS: &[&str] = &[\"dmamem.wakes\"];\n\
                       pub const PROF_KEYS: &[&str] = &[\"dmamem.prof.events\"];\n\
                       pub const EVENT_KINDS: &[&str] = &[\"epoch_tick\"];";
        assert!(KeyTable::from_obs_source(partial).is_err());
    }
}
