//! CLI entry point: `cargo run -p simlint [-- --json FILE] [--root DIR]`.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::rules::RULES;
use simlint::{find_workspace_root, lint_workspace, Severity};

const USAGE: &str = "\
simlint — workspace determinism & invariant static analysis

USAGE:
    cargo run -p simlint [-- OPTIONS]

OPTIONS:
    --root DIR        workspace to scan (default: nearest [workspace] above cwd)
    --json FILE       also write a machine-readable JSON report to FILE
    --show-warnings   print warn-severity findings individually (always in JSON)
    --list-rules      print the rule table and exit
    -h, --help        this help

Exit status: 0 when no deny-severity findings, 1 otherwise.
Suppress a finding with: // simlint::allow(<rule>, \"written justification\")";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut show_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--show-warnings" => show_warnings = true,
            "--list-rules" => {
                for (name, what) in RULES {
                    println!("{name:15} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no [workspace] Cargo.toml found above the current directory");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        if f.severity == Severity::Deny || show_warnings {
            println!(
                "{}:{}: [{}] {}: {}\n    {}",
                f.path,
                f.line,
                f.severity.as_str(),
                f.rule,
                f.message,
                f.snippet
            );
        }
    }
    println!(
        "simlint: {} files scanned, {} deny, {} warn{}",
        report.files_scanned,
        report.deny_count(),
        report.warn_count(),
        if report.warn_count() > 0 && !show_warnings {
            " (rerun with --show-warnings to list)"
        } else {
            ""
        }
    );

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
