//! CLI entry point: `cargo run -p simlint [-- --json FILE] [--root DIR]`.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::rules::RULES;
use simlint::{find_workspace_root, lint_workspace, Severity};

const USAGE: &str = "\
simlint — workspace determinism & invariant static analysis

USAGE:
    cargo run -p simlint [-- OPTIONS]

OPTIONS:
    --root DIR        workspace to scan (default: nearest [workspace] above cwd)
    --json FILE       also write a machine-readable JSON report to FILE
    --show-warnings   print warn-severity findings individually (always in JSON)
    --max-ms N        fail when the whole scan takes longer than N ms
                      (CI smoke threshold for lint runtime)
    --list-rules      print the rule table and exit
    -h, --help        this help

Exit status: 0 when no deny-severity findings (and within --max-ms), 1 otherwise.
Suppress a finding with: // simlint::allow(<rule>, \"written justification\")";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut show_warnings = false;
    let mut max_ms: Option<u128> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--show-warnings" => show_warnings = true,
            "--max-ms" => match args.next().and_then(|v| v.parse::<u128>().ok()) {
                Some(v) => max_ms = Some(v),
                None => {
                    eprintln!("simlint: --max-ms needs an integer argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (name, what) in RULES {
                    println!("{name:15} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no [workspace] Cargo.toml found above the current directory");
            return ExitCode::from(2);
        }
    };

    // simlint::allow(wall-clock, "lint-runtime smoke threshold: measures the linter's own host time, never simulation state")
    let started = std::time::Instant::now();
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        if f.severity == Severity::Deny || show_warnings {
            println!(
                "{}:{}: [{}] {}: {}\n    {}",
                f.path,
                f.line,
                f.severity.as_str(),
                f.rule,
                f.message,
                f.snippet
            );
        }
    }
    println!(
        "simlint: {} files scanned, {} deny, {} warn in {}ms{}",
        report.files_scanned,
        report.deny_count(),
        report.warn_count(),
        elapsed_ms,
        if report.warn_count() > 0 && !show_warnings {
            " (rerun with --show-warnings to list)"
        } else {
            ""
        }
    );

    if let Some(max) = max_ms {
        if elapsed_ms > max {
            eprintln!("simlint: scan took {elapsed_ms}ms, over the --max-ms {max} threshold");
            return ExitCode::FAILURE;
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
