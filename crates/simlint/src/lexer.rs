//! A hand-rolled (std-only, no `syn`) token-level lexer for Rust
//! source.
//!
//! PR 3's scanner classified *lines*; every rule that needed more than
//! "is this text code or comment" paid for it in false positives. This
//! lexer produces a real token stream — identifiers, lifetimes, char
//! literals, string literals (plain/raw/byte, any hash depth), numeric
//! literals with int/float distinction, maximal-munch punctuation, and
//! comments (line and nested block) — which the symbol pass
//! ([`crate::symbols`]) and the token-level rules consume directly.
//!
//! The corner cases that motivated the rewrite all have regression
//! tests here and in `scan.rs`:
//!
//! * raw strings of any hash depth, including contents that *look like*
//!   raw-string openers/closers of other depths (`r##"a "# b"##`);
//! * `'a` lifetimes vs `'a'` char literals, including the escaped
//!   quote char `'\''` that a naive skip-to-next-quote loop misparses;
//! * nested block comments;
//! * raw identifiers (`r#match` is an identifier, not a raw string).
//!
//! The lexer is lossless enough for linting (token kind, text, 1-based
//! line) but deliberately does not preserve whitespace.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are unprefixed: `r#match`
    /// lexes as `match`).
    Ident,
    /// A lifetime or loop label; `text` holds the name without the tick.
    Lifetime,
    /// A char or byte-char literal; `text` holds the raw interior.
    CharLit,
    /// A string literal (plain, raw, byte, or raw byte); `text` holds
    /// the raw interior (escapes unprocessed, delimiters stripped).
    StrLit,
    /// An integer literal (including hex/octal/binary).
    NumInt,
    /// A floating-point literal.
    NumFloat,
    /// Punctuation, maximal-munch (`::`, `..=`, `->`, `==`, …).
    Punct,
    /// A `//` line comment; `text` is the body without the slashes.
    LineComment,
    /// A `/* … */` block comment (nesting folded); `text` is the body.
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is stripped).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// True when this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Multi-character punctuation, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens. Never fails: malformed input degrades to
/// single-character punctuation tokens rather than an error, because a
/// linter must keep going on code that `rustc` would reject.
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer {
        chars: source.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.push(Tok { kind, text, line });
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == 'r' && self.raw_str_hashes(1).is_some() {
                let h = self.raw_str_hashes(1).unwrap();
                self.i += 1; // past `r`
                self.raw_string(h);
            } else if c == 'b' && self.peek(1) == Some('r') && self.raw_str_hashes(2).is_some() {
                let h = self.raw_str_hashes(2).unwrap();
                self.i += 2; // past `br`
                self.raw_string(h);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.i += 1; // past `b`
                self.string();
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.i += 1; // past `b`
                self.char_or_lifetime();
            } else if c == 'r'
                && self.peek(1) == Some('#')
                && self.peek(2).is_some_and(is_ident_start)
            {
                self.i += 2; // past `r#`: raw identifier
                self.ident();
            } else if is_ident_start(c) {
                self.ident();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '"' {
                self.string();
            } else if c == '\'' {
                self.char_or_lifetime();
            } else {
                self.punct();
            }
        }
        self.out
    }

    /// Returns the hash depth when `i + off` starts `#*"` (a raw-string
    /// opener body).
    fn raw_str_hashes(&self, off: usize) -> Option<u32> {
        let mut j = off;
        let mut hashes = 0u32;
        while self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        if self.peek(j) == Some('"') {
            Some(hashes)
        } else {
            None
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.i += 2;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.i += 2;
        let mut depth = 1u32;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Numeric literal. Distinguishes ints from floats: a `.` makes a
    /// float only when followed by a digit or by nothing number-like
    /// (`1.`), so ranges (`1..n`) and tuple chains stay integers, and
    /// exponents (`2e9`, `1.5e-3`) are floats.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut float = false;
        let hex =
            self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b'));
        // Digits, underscores, and base/suffix letters.
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // `e`/`E` exponent makes a float: `1e9`, `2.5e-3`.
                if (c == 'e' || c == 'E') && !hex {
                    let signed = matches!(self.peek(1), Some('+') | Some('-'));
                    let exp_digit = |o: Option<char>| o.is_some_and(|d| d.is_ascii_digit());
                    if exp_digit(self.peek(1)) || (signed && exp_digit(self.peek(2))) {
                        float = true;
                        text.push(c);
                        self.bump();
                        if signed {
                            text.push(self.bump().unwrap_or_default());
                        }
                        continue;
                    }
                }
                text.push(c);
                self.bump();
            } else if c == '.' && !float {
                match self.peek(1) {
                    // `1..n` range or `1.method()`: the dot is not ours.
                    Some('.') => break,
                    Some(d) if d.is_ascii_digit() => {
                        float = true;
                        text.push('.');
                        self.bump();
                    }
                    Some(d) if is_ident_start(d) => break,
                    // Trailing-dot float: `1.` (valid Rust).
                    _ => {
                        float = true;
                        text.push('.');
                        self.bump();
                        break;
                    }
                }
            } else {
                break;
            }
        }
        // A suffix can force the class: `1f64` is a float.
        if text.ends_with("f32") || text.ends_with("f64") {
            float = true;
        }
        let kind = if float {
            TokKind::NumFloat
        } else {
            TokKind::NumInt
        };
        self.push(kind, text, line);
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::StrLit, text, line);
    }

    fn raw_string(&mut self, hashes: u32) {
        let line = self.line;
        // Past the `#…#"` opener.
        self.i += hashes as usize;
        self.bump(); // the quote (bump to count a possible newline — never is one)
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' && (1..=hashes as usize).all(|k| self.peek(k) == Some('#')) {
                self.bump();
                self.i += hashes as usize;
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::StrLit, text, line);
    }

    /// Disambiguates `'a'` (char), `'\''` (escaped char), and `'a`
    /// (lifetime). Rust's rule: `'X'` is always a char literal; a tick
    /// followed by an identifier without a closing tick is a lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // tick
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume the escape, then
                // everything up to the *real* closing quote. `'\''` must
                // not terminate on the escaped quote itself.
                let mut text = String::new();
                text.push(self.bump().unwrap_or_default()); // backslash
                if let Some(esc) = self.bump() {
                    text.push(esc); // the escaped character (may be `'`)
                    if esc == 'u' {
                        // `'\u{…}'`
                        while let Some(c) = self.peek(0) {
                            if c == '\'' {
                                break;
                            }
                            text.push(c);
                            self.bump();
                        }
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::CharLit, text, line);
            }
            Some(c) if self.peek(1) == Some('\'') && c != '\'' => {
                // Plain one-character literal `'x'` — including when `x`
                // would start an identifier: `'a'` is a char, never a
                // lifetime.
                self.bump();
                self.bump();
                self.push(TokKind::CharLit, c.to_string(), line);
            }
            Some(c) if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line);
            }
            Some(c) => {
                // Non-identifier single char, e.g. `' '` or `'"'`.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::CharLit, c.to_string(), line);
            }
            None => self.push(TokKind::Punct, "'".into(), line),
        }
    }

    fn punct(&mut self) {
        let line = self.line;
        for p in PUNCTS {
            if self
                .chars
                .get(self.i..self.i + p.len())
                .is_some_and(|w| w.iter().collect::<String>() == **p)
            {
                self.i += p.len();
                self.push(TokKind::Punct, (*p).to_string(), line);
                return;
            }
        }
        let c = self.bump().unwrap_or_default();
        self.push(TokKind::Punct, c.to_string(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let t = kinds("let x = 42 + y_ns;");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
        assert_eq!(t[2], (TokKind::Punct, "=".into()));
        assert_eq!(t[3], (TokKind::NumInt, "42".into()));
        assert_eq!(t[4], (TokKind::Punct, "+".into()));
        assert_eq!(t[5], (TokKind::Ident, "y_ns".into()));
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert_eq!(kinds("0.5")[0], (TokKind::NumFloat, "0.5".into()));
        assert_eq!(kinds("1e-9")[0], (TokKind::NumFloat, "1e-9".into()));
        assert_eq!(kinds("3f64")[0], (TokKind::NumFloat, "3f64".into()));
        assert_eq!(kinds("42u64")[0], (TokKind::NumInt, "42u64".into()));
        assert_eq!(kinds("0x1F")[0], (TokKind::NumInt, "0x1F".into()));
        // `1..4` is int, range, int — the dots never fuse into a float.
        let t = kinds("1..4");
        assert_eq!(t[0], (TokKind::NumInt, "1".into()));
        assert_eq!(t[1], (TokKind::Punct, "..".into()));
        assert_eq!(t[2], (TokKind::NumInt, "4".into()));
        // Tuple-field access stays integral.
        let t = kinds("p.0 == p.1");
        assert_eq!(t[2], (TokKind::NumInt, "0".into()));
        assert_eq!(t[3], (TokKind::Punct, "==".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert!(t.contains(&(TokKind::Lifetime, "a".into())));
        assert!(t.contains(&(TokKind::CharLit, "a".into())));
        // `'static` and labels are lifetimes.
        assert_eq!(kinds("'static")[0], (TokKind::Lifetime, "static".into()));
        assert_eq!(kinds("'outer: loop")[0].0, TokKind::Lifetime);
    }

    #[test]
    fn escaped_quote_char_literal() {
        // The regression case: `'\''` must consume exactly one literal and
        // leave the following tokens intact.
        let t = kinds(r"let c = '\''; live();");
        assert!(t.contains(&(TokKind::CharLit, "\\'".into())));
        assert!(t.contains(&(TokKind::Ident, "live".into())));
        // And `'\\'`, `'\n'`, `'\u{41}'`.
        assert_eq!(kinds(r"'\\'")[0].0, TokKind::CharLit);
        assert_eq!(kinds(r"'\n'")[0].0, TokKind::CharLit);
        assert_eq!(kinds(r"'\u{41}'")[0], (TokKind::CharLit, "\\u{41}".into()));
    }

    #[test]
    fn strings_plain_raw_byte() {
        assert_eq!(
            kinds(r#""hi \"there\"""#)[0],
            (TokKind::StrLit, "hi \\\"there\\\"".into())
        );
        assert_eq!(
            kinds(r##"r#"raw " quote"#"##)[0],
            (TokKind::StrLit, "raw \" quote".into())
        );
        assert_eq!(kinds(r#"b"bytes""#)[0], (TokKind::StrLit, "bytes".into()));
        assert_eq!(
            kinds(r###"br##"raw bytes"##"###)[0],
            (TokKind::StrLit, "raw bytes".into())
        );
        // Depth matters: a `"#` inside an `r##` string does not close it.
        let t = kinds(r###"r##"a "# b"## tail"###);
        assert_eq!(t[0], (TokKind::StrLit, "a \"# b".into()));
        assert_eq!(t[1], (TokKind::Ident, "tail".into()));
        // Zero-hash raw string containing a hash.
        assert_eq!(kinds(r##"r"#""##)[0], (TokKind::StrLit, "#".into()));
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        let t = kinds("let r#match = 5;");
        assert!(t.contains(&(TokKind::Ident, "match".into())));
        assert!(!t.iter().any(|(k, _)| *k == TokKind::StrLit));
    }

    #[test]
    fn comments_nested_and_line() {
        let t = kinds("a /* x /* y */ z */ b // tail\nc");
        assert_eq!(t[0], (TokKind::Ident, "a".into()));
        assert_eq!(t[1].0, TokKind::BlockComment);
        assert_eq!(t[2], (TokKind::Ident, "b".into()));
        assert_eq!(t[3], (TokKind::LineComment, " tail".into()));
        assert_eq!(t[4], (TokKind::Ident, "c".into()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline\"\nb\nr#\"raw\nmore\"#\nc";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("two\nline"), 2);
        assert_eq!(find("b"), 4);
        assert_eq!(find("raw\nmore"), 5);
        assert_eq!(find("c"), 7);
    }

    #[test]
    fn maximal_munch_puncts() {
        let t = kinds("a..=b a::b a->b a==b");
        assert!(t.contains(&(TokKind::Punct, "..=".into())));
        assert!(t.contains(&(TokKind::Punct, "::".into())));
        assert!(t.contains(&(TokKind::Punct, "->".into())));
        assert!(t.contains(&(TokKind::Punct, "==".into())));
    }
}
