//! Source scanner: a hand-rolled lexical pass over Rust source that
//! separates *code* from comments and string literals, so rules match
//! only real code while comment text (for `simlint::allow` directives)
//! and string-literal contents (for the `obs-key` rule) stay
//! addressable per line.
//!
//! This is deliberately not a full Rust lexer — no `syn`, matching the
//! workspace's offline/no-external-deps convention — but it handles the
//! token classes that matter for masking: line comments, nested block
//! comments, string literals with escapes, raw strings (`r"…"`,
//! `r#"…"#`, any hash depth, byte variants), char literals, and
//! lifetimes (`'a` is *not* an unterminated char literal).

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with comments removed and string/char literal contents
    /// blanked (delimiters kept, so `.expect("…")` still shows the call).
    pub code: String,
    /// Comment text on this line (line and block comments concatenated).
    pub comment: String,
    /// Contents of string literals that *start* on this line, raw
    /// (escape sequences unprocessed).
    pub literals: Vec<String>,
    /// True when the line sits inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
}

enum Mode {
    Code,
    LineComment,
    /// Nested block comment, with current depth.
    BlockComment(u32),
    /// Ordinary string literal.
    Str,
    /// Raw string literal closed by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Returns the hash depth when `chars[i..]` starts a raw string
/// (`i` points at the `r`): `r"`, `r#"`, `r##"`, …
fn raw_start(chars: &[char], i: usize) -> Option<u32> {
    let mut j = i + 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// True when the raw-string closing quote at `chars[i]` is followed by
/// `hashes` `#` characters.
fn raw_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Scans `source` into per-line code/comment/literal records and marks
/// `#[cfg(test)]`-gated regions.
pub fn scan(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    // Literals are attached to the line their opening quote is on; the
    // line index is only known once pushed, so collect and distribute.
    let mut pending_literals: Vec<(usize, String)> = Vec::new();
    let mut lit_buf = String::new();
    let mut lit_line = 0usize;
    let mut mode = Mode::Code;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match mode {
                Mode::LineComment => mode = Mode::Code,
                Mode::Str | Mode::RawStr(_) => lit_buf.push('\n'),
                _ => {}
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Str;
                    cur.code.push('"');
                    lit_buf.clear();
                    lit_line = lines.len();
                    i += 1;
                } else if c == 'r' {
                    if let Some(h) = raw_start(&chars, i) {
                        mode = Mode::RawStr(h);
                        cur.code.push('"');
                        lit_buf.clear();
                        lit_line = lines.len();
                        i += 2 + h as usize;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: consume the escaped
                        // character *unconditionally* before scanning for
                        // the closing quote — in `'\''` the escaped char
                        // is itself a quote, and stopping on it would
                        // leave the real closing quote behind as a stray
                        // tick that mis-lexes whatever follows.
                        cur.code.push_str("' '");
                        i += 3; // tick, backslash, escaped char
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'')
                        && chars.get(i + 1).is_some_and(|&x| x != '\'')
                    {
                        // Plain char literal 'x'.
                        cur.code.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime tick.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    lit_buf.push(c);
                    if let Some(&next) = chars.get(i + 1) {
                        lit_buf.push(next);
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    pending_literals.push((lit_line, std::mem::take(&mut lit_buf)));
                    mode = Mode::Code;
                    i += 1;
                } else {
                    lit_buf.push(c);
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && raw_closes(&chars, i, hashes) {
                    cur.code.push('"');
                    pending_literals.push((lit_line, std::mem::take(&mut lit_buf)));
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    lit_buf.push(c);
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    // An unterminated literal at EOF still surfaces for obs-key checks.
    if !lit_buf.is_empty() {
        pending_literals.push((lit_line, lit_buf));
    }
    for (idx, lit) in pending_literals {
        if let Some(line) = lines.get_mut(idx) {
            line.literals.push(lit);
        }
    }
    mark_test_regions(&mut lines);
    lines
}

/// Marks lines inside `#[cfg(test)]`-gated items (the attribute line,
/// the item header, and the braced block). Limitation: the attribute is
/// assumed to gate the next braced item — true for the `mod tests`
/// convention this workspace uses everywhere.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut skip_from: Option<i64> = None;
    for line in lines.iter_mut() {
        let mut in_test = skip_from.is_some();
        if line.code.contains("#[cfg(test)]") {
            armed = true;
        }
        if armed {
            in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed && skip_from.is_none() {
                        skip_from = Some(depth);
                        armed = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_from == Some(depth) {
                        skip_from = None;
                    }
                }
                _ => {}
            }
        }
        line.in_test = in_test;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_from_code() {
        let lines = scan("let x = 1; // trailing\n/* block */ let y = 2;\n");
        assert_eq!(lines[0].code.trim_end(), "let x = 1;");
        assert_eq!(lines[0].comment.trim(), "trailing");
        assert!(lines[1].code.contains("let y = 2;"));
        assert!(!lines[1].code.contains("block"));
        assert_eq!(lines[1].comment.trim(), "block");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lines = scan("/* a /* b */ c */ code();\n");
        assert!(lines[0].code.contains("code();"));
        assert!(!lines[0].code.contains('a'));
    }

    #[test]
    fn string_contents_are_masked_but_recorded() {
        let lines = scan("call(\"HashMap inside\"); after();\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("after();"));
        assert_eq!(lines[0].literals, vec!["HashMap inside".to_string()]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let lines = scan("a(r#\"raw \" quote\"#); b(\"es\\\"c\");\n");
        assert_eq!(lines[0].literals.len(), 2);
        assert_eq!(lines[0].literals[0], "raw \" quote");
        assert_eq!(lines[0].literals[1], "es\\\"c");
    }

    #[test]
    fn multiline_string_attaches_to_start_line() {
        let lines = scan("x(\"first\nsecond\");\ntail();\n");
        assert_eq!(lines[0].literals, vec!["first\nsecond".to_string()]);
        assert!(lines[2].code.contains("tail();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn char_literals_are_masked() {
        let lines = scan("let c = '\"'; let d = '\\n'; live();\n");
        assert!(lines[0].code.contains("live();"));
        assert!(lines[0].literals.is_empty());
    }

    #[test]
    fn escaped_quote_char_literal_regression() {
        // `'\''` used to terminate on the escaped quote, leaving the real
        // closing quote behind to swallow the code that follows.
        let lines = scan("let c = '\\''; let x = v[idx];\n");
        assert!(
            lines[0].code.contains("let x = v[idx];"),
            "code after '\\'' must survive: {:?}",
            lines[0].code
        );
        // `'\\'` and `'\u{41}'` stay single literals too.
        let lines = scan("let a = '\\\\'; let b = '\\u{41}'; live();\n");
        assert!(lines[0].code.contains("live();"), "{:?}", lines[0].code);
    }

    #[test]
    fn nested_depth_raw_strings_regression() {
        // An `r##` string containing a lower-depth closer (`"#`) must not
        // close early, at any hash depth.
        let lines = scan("let s = r##\"a \"# b\"##; tail();\n");
        assert_eq!(lines[0].literals, vec!["a \"# b".to_string()]);
        assert!(lines[0].code.contains("tail();"), "{:?}", lines[0].code);
        // …including a full raw string of another depth inside.
        let lines = scan("let s = r##\"r#\"x\"#\"##; tail();\n");
        assert_eq!(lines[0].literals, vec!["r#\"x\"#".to_string()]);
        assert!(lines[0].code.contains("tail();"), "{:?}", lines[0].code);
    }

    #[test]
    fn lifetime_tick_then_char_literal_mix() {
        // A lifetime and a char literal of the same letter on one line.
        let lines = scan("fn f<'a>(x: &'a str) -> char { let c = 'a'; c }\n");
        assert!(lines[0].code.contains("fn f<'a>"));
        assert!(lines[0].code.contains("c }"), "{:?}", lines[0].code);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }
}
