//! Workspace function-level call graph and the panic-reachability pass.
//!
//! Built from the per-file symbol tables ([`crate::symbols`]), the graph
//! resolves call sites to workspace functions *by name* — a deliberate
//! over-approximation (any workspace method named `push` is a candidate
//! callee of every `.push(…)` site) that is safe for a deny-rule:
//! reachability can only be overestimated, never missed. Calls that
//! resolve to nothing (std, external) contribute no edges.
//!
//! Roots are every non-test function in the engine hot loop: the
//! `dmamem::system` dispatch phases, the controllers and chip model they
//! drive, and the `simcore` event queue and slab arena under them. A
//! panic site (`unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
//! `unimplemented!`) in any function reachable from a root is a `deny`
//! finding at the site's own line (so `simlint::allow` placement is
//! unchanged); slice indexing in reachable functions is a `warn` — the
//! arena/wheel structures are index-addressed by design and a blanket
//! deny would only breed reasonless allows.

use std::collections::{BTreeMap, VecDeque};

use crate::rules::{self, Finding, Severity};
use crate::symbols::{FileSymbols, FnSym};

/// Hot-loop root files: every non-test `fn` defined here is a BFS root.
pub fn is_root_path(p: &str) -> bool {
    p == "crates/dmamem/src/system.rs"
        || p.starts_with("crates/dmamem/src/controller/")
        || p == "crates/mempower/src/chip.rs"
        || p == "crates/simcore/src/event.rs"
        || p == "crates/simcore/src/slab.rs"
}

struct Node<'a> {
    file: &'a FileSymbols,
    f: &'a FnSym,
}

/// The reachability result for one function.
struct Reach {
    parent: Option<usize>,
}

/// Runs the panic-reachability pass over all graph-scope files and
/// returns raw (pre-suppression) findings.
pub fn panic_findings(files: &[FileSymbols]) -> Vec<Finding> {
    // Nodes: non-test fns in simulation-crate files.
    let mut nodes: Vec<Node> = Vec::new();
    for file in files {
        if !rules::is_sim_path(&file.path) {
            continue;
        }
        for f in &file.fns {
            if !f.is_test {
                nodes.push(Node { file, f });
            }
        }
    }

    // Name index for resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.f.name.as_str()).or_default().push(i);
    }

    let resolve =
        |caller: &Node, name: &str, qualifier: Option<&str>, method: bool| -> Vec<usize> {
            let Some(cands) = by_name.get(name) else {
                return Vec::new();
            };
            cands
                .iter()
                .copied()
                .filter(|&i| {
                    let callee = &nodes[i];
                    match qualifier {
                        Some("Self") => callee.f.self_ty == caller.f.self_ty,
                        Some(q) => {
                            callee.f.self_ty.as_deref() == Some(q)
                                || callee.f.module.last().map(String::as_str) == Some(q)
                                || callee.file.crate_name == q
                        }
                        None if method => callee.f.self_ty.is_some(),
                        None => callee.f.self_ty.is_none(),
                    }
                })
                .collect()
        };

    // BFS from every root; keep the first (shortest) parent chain.
    let mut reach: Vec<Option<Reach>> = (0..nodes.len()).map(|_| None).collect();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, n) in nodes.iter().enumerate() {
        if is_root_path(&n.file.path) {
            reach[i] = Some(Reach { parent: None });
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        // Clone the call list so the borrow on `nodes` stays immutable.
        let calls: Vec<(String, Option<String>, bool)> = nodes[i]
            .f
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.qualifier.clone(), c.method))
            .collect();
        for (name, qualifier, method) in calls {
            for j in resolve(&nodes[i], &name, qualifier.as_deref(), method) {
                if reach[j].is_none() {
                    reach[j] = Some(Reach { parent: Some(i) });
                    queue.push_back(j);
                }
            }
        }
    }

    let chain_of = |mut i: usize| -> String {
        let mut names = vec![nodes[i].f.display_name()];
        while let Some(p) = reach[i].as_ref().and_then(|r| r.parent) {
            names.push(nodes[p].f.display_name());
            i = p;
        }
        names.reverse();
        if names.len() > 5 {
            let tail = names.split_off(names.len() - 2);
            names.truncate(2);
            names.push("…".to_string());
            names.extend(tail);
        }
        names.join(" → ")
    };

    let mut out = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if reach[i].is_none() {
            continue;
        }
        let chain = chain_of(i);
        for p in &n.f.panics {
            out.push(Finding {
                rule: "panic-path",
                severity: Severity::Deny,
                path: n.file.path.clone(),
                line: p.line,
                message: format!(
                    "`{}` is reachable from the engine hot loop ({chain}): a panic here \
                     aborts a whole sweep batch; return a typed error or allow with the \
                     invariant that makes it unreachable",
                    p.what
                ),
                snippet: String::new(), // filled in by the caller from source lines
            });
        }
        for &line in &n.f.index_lines {
            out.push(Finding {
                rule: "panic-path",
                severity: Severity::Warn,
                path: n.file.path.clone(),
                line,
                message: format!(
                    "slice/array indexing reachable from the engine hot loop ({chain}) can \
                     panic; prefer get() where the index is not invariant-checked"
                ),
                snippet: String::new(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::analyze;

    fn sym(path: &str, src: &str) -> FileSymbols {
        analyze(path, &lex(src))
    }

    fn denies(findings: &[Finding]) -> Vec<(String, usize)> {
        findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .map(|f| (f.path.clone(), f.line))
            .collect()
    }

    #[test]
    fn panic_reachable_through_two_hops_is_denied() {
        let files = vec![
            sym("crates/dmamem/src/system.rs", "fn run() { step(); }\n"),
            sym(
                "crates/dmamem/src/policy.rs",
                "fn step() { helper::finish(); }\n\
                 mod helper { pub fn finish() { table().unwrap(); } }\n",
            ),
        ];
        let f = panic_findings(&files);
        assert_eq!(
            denies(&f),
            vec![("crates/dmamem/src/policy.rs".to_string(), 2)]
        );
        assert!(f[0].message.contains("run → step → finish"));
    }

    #[test]
    fn unreachable_panic_is_silent() {
        let files = vec![
            sym("crates/dmamem/src/system.rs", "fn run() { step(); }\n"),
            sym(
                "crates/dmamem/src/debug.rs",
                "fn step() {}\nfn dump() { x.unwrap(); }\n",
            ),
        ];
        assert!(denies(&panic_findings(&files)).is_empty());
    }

    #[test]
    fn method_calls_resolve_to_workspace_impls() {
        let files = vec![
            sym(
                "crates/simcore/src/event.rs",
                "impl Queue { fn pop(&mut self) { self.wheel.advance(); } }\n",
            ),
            sym(
                "crates/simcore/src/wheel.rs",
                "impl Wheel { fn advance(&mut self) { panic!(\"empty\"); } }\n",
            ),
        ];
        let f = panic_findings(&files);
        assert_eq!(
            denies(&f),
            vec![("crates/simcore/src/wheel.rs".to_string(), 1)]
        );
        assert!(f[0].message.contains("Queue::pop → Wheel::advance"));
    }

    #[test]
    fn test_fns_are_neither_roots_nor_callees() {
        let files = vec![sym(
            "crates/dmamem/src/system.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn run() {}\n",
        )];
        assert!(denies(&panic_findings(&files)).is_empty());
    }

    #[test]
    fn non_sim_files_are_outside_the_graph() {
        let files = vec![
            sym("crates/dmamem/src/system.rs", "fn run() { spawn(); }\n"),
            sym(
                "crates/simcore/src/par.rs",
                "fn spawn() { lock().unwrap(); }\n",
            ),
        ];
        assert!(denies(&panic_findings(&files)).is_empty());
    }

    #[test]
    fn indexing_in_reachable_fn_is_a_warn() {
        let files = vec![sym(
            "crates/simcore/src/slab.rs",
            "impl Slab { fn get(&self, i: usize) -> u8 { self.data[i] } }\n",
        )];
        let f = panic_findings(&files);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Warn);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn qualified_calls_filter_by_type() {
        // `Other::fire()` must not resolve to `Mine::fire`.
        let files = vec![
            sym(
                "crates/dmamem/src/system.rs",
                "fn run() { Other::fire(); }\n",
            ),
            sym(
                "crates/dmamem/src/a.rs",
                "impl Mine { fn fire() { panic!(\"no\"); } }\n",
            ),
        ];
        assert!(denies(&panic_findings(&files)).is_empty());
    }
}
