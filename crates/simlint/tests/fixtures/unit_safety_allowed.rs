// Allow-annotated twin: the unit mix is a justified figure of merit,
// the wattage is a named constant, and a ratio of unlike units (a
// derived quantity) is exempt by design.
const IDLE_DRAW_MW: f64 = 2.5;

pub fn drift(idle_ns: f64, spent_mj: f64) -> f64 {
    // simlint::allow(unit-safety, "deliberate unitless figure of merit: joules weighted by idle time for the sweep report")
    spent_mj + idle_ns
}

pub fn mean_power(spent_mj: f64, window_ns: f64) -> f64 {
    spent_mj / window_ns
}

pub fn leak(acc: &mut Accumulator) {
    acc.accrue(IDLE_DRAW_MW);
}
