// Twin: the same check against keys that exist in the registered table.
pub fn check(line: &str) -> bool {
    line.contains("dmamem.wakes") && line.contains(r#""kind":"epoch_tick""#)
}
pub fn check_trace(json: &str) -> bool {
    json.contains("dmamem.trace.wakeup")
}
pub fn check_spill(json: &str) -> bool {
    json.contains("dmamem.trace.spilled")
}
pub fn check_progress(line: &str) -> bool {
    line.contains("dmamem.sweep.jobs_done")
}
pub fn check_prof(json: &str) -> bool {
    json.contains("dmamem.prof.events")
}
