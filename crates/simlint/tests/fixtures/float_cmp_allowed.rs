// Twin: total_cmp fixes the sort; the exact-zero division guard needs
// no annotation since the rule exempts zero sentinels; the nonzero
// equality carries a written justification.
pub fn rank(v: &mut [f64]) {
    v.sort_by(|a, b| f64::total_cmp(b, a));
}

pub fn fraction(part: f64, total: f64) -> f64 {
    if total == 0.0 {
        0.0
    } else {
        part / total
    }
}

pub fn is_unit(x: f64) -> bool {
    // simlint::allow(float-cmp, "protocol sentinel: callers pass exactly 1.0 for the unit scale, never a computed value")
    x == 1.0
}
