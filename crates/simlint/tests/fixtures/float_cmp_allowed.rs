// Twin: total_cmp fixes the sort; the equality guard is allow-annotated
// as an exact-zero sentinel.
pub fn rank(v: &mut [f64]) {
    v.sort_by(|a, b| f64::total_cmp(b, a));
}

pub fn fraction(part: f64, total: f64) -> f64 {
    // simlint::allow(float-cmp, "exact-zero sentinel: division guard, not a tolerance comparison")
    if total == 0.0 {
        0.0
    } else {
        part / total
    }
}
