// Seeded violation: ambient RNG construction in simulation code.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..100)
}
