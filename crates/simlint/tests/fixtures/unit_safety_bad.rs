// Seeded violations: dimensionally unsound arithmetic (time added to
// energy) and a magic wattage literal fed straight into the accumulator.
pub fn drift(idle_ns: f64, spent_mj: f64) -> f64 {
    spent_mj + idle_ns
}

pub fn leak(acc: &mut Accumulator) {
    acc.accrue(2.5);
}
