// Allow-annotated twin: the panics carry written invariants.
pub fn serve(queue: &[u64]) -> u64 {
    // simlint::allow(panic-path, "caller enqueues before dispatch; an empty queue here is a scheduler bug")
    let head = queue.first().expect("dispatch on empty queue");
    *head
}
