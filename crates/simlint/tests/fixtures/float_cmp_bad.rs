// Seeded violations: NaN-unsafe sort comparator and exact float
// equality in accounting code.
pub fn rank(v: &mut [f64]) {
    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
}

pub fn is_unit(x: f64) -> bool {
    x == 1.0
}
