// Allow-annotated twin: host-side profiling, never feeds sim state.
use std::time::Instant;

pub fn profile_start() -> Instant {
    // simlint::allow(wall-clock, "host-side profiling only; duration is reported, never simulated")
    Instant::now()
}
