// Seeded violation: metric key not in the registered key table
// (transposed letters), plus an unknown event kind tag.
pub fn check(line: &str) -> bool {
    line.contains("dmamem.wakse") && line.contains(r#""kind":"epoch_tik""#)
}
pub fn check_trace(json: &str) -> bool {
    json.contains("dmamem.trace.wakeups")
}
pub fn check_spill(json: &str) -> bool {
    json.contains("dmamem.trace.spiled")
}
pub fn check_progress(line: &str) -> bool {
    line.contains("dmamem.sweep.jobs_dne")
}
pub fn check_prof(json: &str) -> bool {
    json.contains("dmamem.prof.evnets")
}
