// Seeded violation: `dmamem.dead_key` is registered in the key table but
// no emission site anywhere mentions it — a dead registration that would
// silently pad every audit replay.
pub const METRIC_KEYS: &[&str] = &[
    "dmamem.wakes",
    "dmamem.dead_key",
];
pub const PROF_KEYS: &[&str] = &["dmamem.prof.events"];
pub const EVENT_KINDS: &[&str] = &["epoch_tick"];
pub const TRACE_KEYS: &[&str] = &["dmamem.trace.wakeup"];

pub fn register(r: &mut Registry) {
    r.counter("dmamem.wakes");
    r.counter("dmamem.prof.events");
    r.kind("epoch_tick");
    r.span("dmamem.trace.wakeup");
}
