// Seeded violation: the hot-loop entry reaches an unwrap two call-graph
// hops down — no per-line scope connects them, only the reachability walk.
pub fn dispatch(slots: &[u64]) -> u64 {
    next_slot(slots)
}

fn next_slot(slots: &[u64]) -> u64 {
    decode(slots)
}

fn decode(slots: &[u64]) -> u64 {
    *slots.first().unwrap()
}
