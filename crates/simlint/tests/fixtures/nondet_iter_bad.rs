// Seeded violation: HashMap iteration order would leak into sim state.
use std::collections::HashMap;

pub fn hot_pages() -> Vec<u64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    counts.insert(1, 10);
    counts.insert(2, 20);
    counts.keys().copied().collect()
}
