// Allow-annotated twin: entropy is used for a temp-file name on the
// host side, never for simulated state.
pub fn temp_tag() -> u64 {
    // simlint::allow(ambient-random, "temp-file name entropy on the host side; never reaches sim state")
    let mut rng = rand::thread_rng();
    rng.gen()
}
