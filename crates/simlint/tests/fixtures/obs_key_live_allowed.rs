// Allow-annotated twin: the not-yet-emitted key is kept registered on
// purpose, with the reason written down at its table line.
pub const METRIC_KEYS: &[&str] = &[
    "dmamem.wakes",
    // simlint::allow(obs-key-live, "reserved key: the next controller generation emits it; kept registered for replay compatibility")
    "dmamem.dead_key",
];
pub const PROF_KEYS: &[&str] = &["dmamem.prof.events"];
pub const EVENT_KINDS: &[&str] = &["epoch_tick"];
pub const TRACE_KEYS: &[&str] = &["dmamem.trace.wakeup"];

pub fn register(r: &mut Registry) {
    r.counter("dmamem.wakes");
    r.counter("dmamem.prof.events");
    r.kind("epoch_tick");
    r.span("dmamem.trace.wakeup");
}
