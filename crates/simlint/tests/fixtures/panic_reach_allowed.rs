// Allow-annotated twin: the reachable panic carries a written invariant.
pub fn dispatch(slots: &[u64]) -> u64 {
    next_slot(slots)
}

fn next_slot(slots: &[u64]) -> u64 {
    decode(slots)
}

fn decode(slots: &[u64]) -> u64 {
    // simlint::allow(panic-path, "dispatch is only entered with a non-empty slot table; emptiness is a scheduler bug")
    *slots.first().expect("dispatch with empty slot table")
}
