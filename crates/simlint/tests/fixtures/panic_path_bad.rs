// Seeded violations: panicking calls in an engine hot path.
pub fn serve(queue: &[u64]) -> u64 {
    let head = queue.first().unwrap();
    if *head == 0 {
        panic!("empty request");
    }
    queue[0]
}
