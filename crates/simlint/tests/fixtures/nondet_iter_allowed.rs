// Allow-annotated twin: same construct, justified as lookup-only.
use std::collections::HashMap;

pub struct Cache {
    // simlint::allow(nondet-iter, "lookup-only cache: keyed gets, never iterated")
    slots: HashMap<u64, u64>,
}

pub fn build() -> Cache {
    Cache {
        // simlint::allow(nondet-iter, "see field comment: lookups only")
        slots: HashMap::new(),
    }
}
