// Seeded violation: host time read inside simulation code.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
