//! Call-graph integration test: panic reachability over a synthetic
//! multi-file, multi-module source set, through the public
//! [`lint_sources`] API (so snippet filling and `simlint::allow`
//! suppression are exercised too, not just the raw graph walk).

use simlint::{lint_sources, Finding, KeyTable, Severity};

fn lint_set(files: &[(&str, &str)]) -> Vec<Finding> {
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_sources(&files, &KeyTable::default())
}

fn panic_denies(findings: &[Finding]) -> Vec<&Finding> {
    findings
        .iter()
        .filter(|f| f.rule == "panic-path" && f.severity == Severity::Deny)
        .collect()
}

const SYSTEM: &str = "\
pub struct System;
impl System {
    pub fn run(&mut self) {
        let v = decode_slot(7);
        audit(v);
    }
}
";

const HELPERS: &str = "\
pub fn decode_slot(k: u32) -> u32 {
    table_get(k)
}

fn table_get(k: u32) -> u32 {
    TABLE.get(k as usize).copied().unwrap()
}

pub fn audit(_v: u32) {}

pub mod cold {
    pub fn never_called() {
        panic!(\"diagnostics only\");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        helper_result().unwrap();
    }
}
";

#[test]
fn reachability_crosses_files_and_stops_at_unreached_modules() {
    let findings = lint_set(&[
        ("crates/dmamem/src/system.rs", SYSTEM),
        ("crates/dmamem/src/helpers.rs", HELPERS),
    ]);
    let denies = panic_denies(&findings);
    // Exactly one deny: the unwrap reachable through run → decode_slot →
    // table_get. The panic in the never-called `cold` module and the
    // unwrap in the `#[cfg(test)]` module must both stay silent.
    assert_eq!(denies.len(), 1, "{findings:?}");
    let f = denies[0];
    assert_eq!(f.path, "crates/dmamem/src/helpers.rs");
    assert_eq!(f.line, 6);
    assert!(
        f.message.contains("System::run → decode_slot → table_get"),
        "chain missing from: {}",
        f.message
    );
    assert!(f.snippet.contains("unwrap"), "snippet: {}", f.snippet);
}

#[test]
fn allow_at_the_site_suppresses_across_the_whole_graph() {
    let annotated = HELPERS.replace(
        "    TABLE.get(k as usize).copied().unwrap()",
        "    // simlint::allow(panic-path, \"slot keys are validated at enqueue time\")\n\
         \x20   TABLE.get(k as usize).copied().unwrap()",
    );
    let findings = lint_set(&[
        ("crates/dmamem/src/system.rs", SYSTEM),
        ("crates/dmamem/src/helpers.rs", &annotated),
    ]);
    assert!(panic_denies(&findings).is_empty(), "{findings:?}");
    assert!(
        !findings.iter().any(|f| f.rule == "unused-allow"),
        "{findings:?}"
    );
}

#[test]
fn panic_in_a_root_file_itself_is_denied_without_any_call_edge() {
    let findings = lint_set(&[(
        "crates/simcore/src/event.rs",
        "impl Queue {\n    fn pop(&mut self) -> u64 {\n        self.heap.pop().expect(\"pop on empty queue\")\n    }\n}\n",
    )]);
    let denies = panic_denies(&findings);
    assert_eq!(denies.len(), 1, "{findings:?}");
    assert_eq!(denies[0].line, 3);
    assert!(denies[0].message.contains("Queue::pop"));
}
