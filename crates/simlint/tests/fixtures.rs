//! Per-rule fixture tests: every rule has a seeded-violation fixture
//! that must be caught and an allow-annotated (or genuinely fixed) twin
//! that must pass clean.
//!
//! Fixtures live under `tests/fixtures/` — excluded from the workspace
//! walk — and are linted here under synthetic in-scope paths, because
//! rule scopes are path-driven.

use simlint::rules::Severity;
use simlint::{lint_source, lint_sources, KeyTable, OBS_SOURCE};

fn table() -> KeyTable {
    let mut t = KeyTable::default();
    t.metric_keys.insert("dmamem.wakes".into());
    t.metric_keys.insert("dmamem.sweep.jobs_done".into());
    t.prof_keys.insert("dmamem.prof.events".into());
    t.event_kinds.insert("epoch_tick".into());
    t.trace_keys.insert("dmamem.trace.wakeup".into());
    t.trace_keys.insert("dmamem.trace.spilled".into());
    t
}

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints the named fixture as if it lived at `as_path`.
fn lint_fixture(name: &str, as_path: &str) -> Vec<simlint::Finding> {
    lint_source(as_path, &fixture(name), &table())
}

fn deny_rules(findings: &[simlint::Finding]) -> Vec<&str> {
    findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .map(|f| f.rule)
        .collect()
}

/// The bad fixture must produce at least one deny finding of `rule`;
/// the allowed twin must produce none at all.
fn assert_pair(rule: &str, bad: &str, allowed: &str, as_path: &str) {
    let bad_findings = lint_fixture(bad, as_path);
    assert!(
        deny_rules(&bad_findings).contains(&rule),
        "{bad} under {as_path} should trip {rule}; got {bad_findings:?}"
    );
    let ok_findings = lint_fixture(allowed, as_path);
    assert!(
        deny_rules(&ok_findings).is_empty(),
        "{allowed} under {as_path} should be deny-clean; got {ok_findings:?}"
    );
    // Every allow in the twin must actually suppress something: an
    // unused allow would mean the pair no longer exercises the rule.
    assert!(
        !ok_findings.iter().any(|f| f.rule == "unused-allow"),
        "{allowed} has a stale allow: {ok_findings:?}"
    );
}

#[test]
fn nondet_iter_pair() {
    assert_pair(
        "nondet-iter",
        "nondet_iter_bad.rs",
        "nondet_iter_allowed.rs",
        "crates/dmamem/src/fixture.rs",
    );
}

#[test]
fn wall_clock_pair() {
    assert_pair(
        "wall-clock",
        "wall_clock_bad.rs",
        "wall_clock_allowed.rs",
        "crates/simcore/src/fixture.rs",
    );
}

#[test]
fn ambient_random_pair() {
    assert_pair(
        "ambient-random",
        "ambient_random_bad.rs",
        "ambient_random_allowed.rs",
        "crates/trace/src/fixture.rs",
    );
}

#[test]
fn float_cmp_pair() {
    assert_pair(
        "float-cmp",
        "float_cmp_bad.rs",
        "float_cmp_allowed.rs",
        "crates/dmamem/src/fixture.rs",
    );
}

#[test]
fn panic_path_pair() {
    // Panic scope is narrower: lint as the system hot path itself.
    assert_pair(
        "panic-path",
        "panic_path_bad.rs",
        "panic_path_allowed.rs",
        "crates/dmamem/src/controller/fixture.rs",
    );
}

#[test]
fn panic_reachability_pair() {
    // The seeded unwrap sits two call-graph hops below the hot-loop
    // entry — only the reachability walk can connect them (the
    // acceptance demo for the v2 panic rule).
    assert_pair(
        "panic-path",
        "panic_reach_bad.rs",
        "panic_reach_allowed.rs",
        "crates/dmamem/src/system.rs",
    );
}

#[test]
fn unit_safety_pair() {
    assert_pair(
        "unit-safety",
        "unit_safety_bad.rs",
        "unit_safety_allowed.rs",
        "crates/dmamem/src/fixture.rs",
    );
}

#[test]
fn obs_key_live_pair() {
    // Liveness needs table spans, so the keys parse from the fixture
    // itself and the fixture is linted at the obs source path.
    let bad = fixture("obs_key_live_bad.rs");
    let keys = KeyTable::from_obs_source(&bad).unwrap();
    let fs = lint_sources(&[(OBS_SOURCE.to_string(), bad)], &keys);
    assert!(deny_rules(&fs).contains(&"obs-key-live"), "{fs:?}");

    let ok = fixture("obs_key_live_allowed.rs");
    let keys = KeyTable::from_obs_source(&ok).unwrap();
    let fs = lint_sources(&[(OBS_SOURCE.to_string(), ok)], &keys);
    assert!(deny_rules(&fs).is_empty(), "{fs:?}");
    assert!(
        !fs.iter().any(|f| f.rule == "unused-allow"),
        "obs_key_live_allowed.rs has a stale allow: {fs:?}"
    );
}

#[test]
fn obs_key_pair() {
    assert_pair(
        "obs-key",
        "obs_key_bad.rs",
        "obs_key_allowed.rs",
        "crates/bench/tests/fixture.rs",
    );
}

#[test]
fn bad_fixtures_escape_scope_when_out_of_scope() {
    // The same seeded violations are invisible outside their scope —
    // guards against rules accidentally firing workspace-wide.
    let f = lint_fixture("nondet_iter_bad.rs", "crates/bench/src/fixture.rs");
    assert!(deny_rules(&f).is_empty(), "{f:?}");
    let f = lint_fixture("wall_clock_bad.rs", "crates/criterion/src/fixture.rs");
    assert!(deny_rules(&f).is_empty(), "{f:?}");
    let f = lint_fixture("panic_path_bad.rs", "crates/dmamem/src/metrics_fixture.rs");
    assert!(
        !deny_rules(&f).contains(&"panic-path"),
        "panic-path outside hot paths: {f:?}"
    );
}
