//! The lint gate as a test: `cargo test` alone fails on any deny-severity
//! finding anywhere in the workspace, so determinism regressions are
//! caught even where CI scripts are not wired up.

use simlint::{find_workspace_root, lint_workspace, Severity};

#[test]
fn workspace_is_deny_clean() {
    let manifest_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&manifest_dir).expect("workspace root above simlint");
    let report = lint_workspace(&root).expect("workspace scan");

    // The whole workspace is scanned, not a subtree.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );

    let denies: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .collect();
    assert!(
        denies.is_empty(),
        "deny-severity lint findings:\n{}",
        denies
            .iter()
            .map(|f| format!(
                "  {}:{} [{}] {}\n      {}",
                f.path, f.line, f.rule, f.message, f.snippet
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Suppressions must stay live: a stale allow hides nothing and
    // rots into a false sense of coverage.
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "unused-allow")
        .collect();
    assert!(
        stale.is_empty(),
        "stale simlint::allow directives: {stale:?}"
    );
}

#[test]
fn json_report_is_well_formed() {
    let manifest_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&manifest_dir).expect("workspace root above simlint");
    let report = lint_workspace(&root).expect("workspace scan");
    let json = report.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"findings\""));
    // Warn findings are always serialized, even though the CLI hides
    // them by default.
    assert!(json.contains("\"warn\""));
}
