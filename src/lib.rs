//! `dma-aware-mem` — a full Rust reproduction of *"DMA-Aware Memory Energy
//! Management"* (Pandey, Jiang, Zhou, Bianchini — HPCA 2006).
//!
//! This facade crate re-exports the workspace's building blocks so an
//! application can depend on a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `dmamem` | DMA-TA, PL, the server simulator, experiments |
//! | [`power`] | `mempower` | RDRAM power model, chips, low-level policies |
//! | [`bus`] | `iobus` | PCI-X-style buses and DMA request pacing |
//! | [`disk`] | `disksim` | analytic disk/array timing model |
//! | [`workloads`] | `dma-trace` | traces and calibrated workload generators |
//! | [`sim`] | `simcore` | event queue, time types, RNG, statistics |
//!
//! # Example
//!
//! ```
//! use dma_aware_mem::core::{Scheme, ServerSimulator, SystemConfig};
//! use dma_aware_mem::workloads::{SyntheticStorageGen, TraceGen};
//! use dma_aware_mem::sim::SimDuration;
//!
//! let trace = SyntheticStorageGen::default().generate(SimDuration::from_ms(2), 1);
//! let result = ServerSimulator::new(SystemConfig::default(), Scheme::baseline()).run(&trace);
//! assert!(result.transfers > 0);
//! ```

#![warn(missing_docs)]

/// The paper's contribution: controller schemes, simulator, experiments.
pub use dmamem as core;

/// Multi-power-mode DRAM modelling.
pub use mempower as power;

/// I/O buses and DMA request pacing.
pub use iobus as bus;

/// Disk and disk-array timing.
pub use disksim as disk;

/// Traces and workload generators.
pub use dma_trace as workloads;

/// Discrete-event simulation substrate.
pub use simcore as sim;
