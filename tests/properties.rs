//! Property-based tests over the whole stack: random workload parameters
//! and system shapes must never break the simulator's core invariants.

use dma_aware_mem::bus::BusConfig;
use dma_aware_mem::core::{Scheme, ServerSimulator, SystemConfig};
use dma_aware_mem::power::EnergyCategory;
use dma_aware_mem::sim::SimDuration;
use dma_aware_mem::workloads::{SyntheticDbGen, SyntheticStorageGen, TraceGen};
use proptest::prelude::*;

fn system(chips: usize, buses: usize, bus_rate: f64) -> SystemConfig {
    SystemConfig {
        chips,
        pages: chips * 512, // comfortably within capacity
        ..SystemConfig::default()
    }
    .with_buses(buses, BusConfig::with_rate(bus_rate))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every transfer and processor access in a random workload is served
    /// exactly once, under a random scheme and system shape.
    #[test]
    fn conservation_of_work(
        seed in 0u64..1000,
        rate in 20.0f64..150.0,
        chips in 4usize..16,
        buses in 1usize..5,
        mu in 0.0f64..20.0,
        use_pl in any::<bool>(),
    ) {
        let gen = SyntheticStorageGen {
            transfers_per_ms: rate,
            pages: chips * 256,
            buses,
            ..Default::default()
        };
        let trace = gen.generate(SimDuration::from_ms(1), seed);
        let stats = trace.stats();
        let scheme = if use_pl { Scheme::dma_ta_pl(mu, 2) } else { Scheme::dma_ta(mu) };
        let config = system(chips, buses, 1.064e9);
        let r = ServerSimulator::new(config, scheme).run(&trace);
        prop_assert_eq!(r.transfers, stats.dma_transfers());
        prop_assert!(r.dma_requests >= r.transfers);
    }

    /// Energy accounting is exhaustive: the per-chip totals sum to the
    /// aggregate, every category is nonnegative, and the average power is
    /// bounded by all-chips-active power.
    #[test]
    fn energy_accounting_is_consistent(
        seed in 0u64..1000,
        mu in 0.0f64..10.0,
    ) {
        let gen = SyntheticStorageGen {
            pages: 4096,
            ..Default::default()
        };
        let trace = gen.generate(SimDuration::from_ms(1), seed);
        let config = SystemConfig { pages: 4096, ..SystemConfig::default() };
        let r = ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(mu, 2)).run(&trace);
        let sum: f64 = r.per_chip_mj.iter().sum();
        prop_assert!((sum - r.energy.total_mj()).abs() < 1e-9);
        for cat in EnergyCategory::ALL {
            prop_assert!(r.energy.energy_mj(cat) >= 0.0);
        }
        let max_power = config.chips as f64 * 300.0;
        prop_assert!(r.avg_power_mw() <= max_power + 1.0, "power {}", r.avg_power_mw());
        // And at least the sleep floor.
        prop_assert!(r.avg_power_mw() >= config.chips as f64 * 3.0 - 1.0);
    }

    /// Identical seeds give bit-identical results; different seeds differ.
    #[test]
    fn determinism(seed in 0u64..1000) {
        let gen = SyntheticDbGen {
            pages: 4096,
            proc_per_transfer: 20.0,
            ..Default::default()
        };
        let trace = gen.generate(SimDuration::from_ms(1), seed);
        let config = SystemConfig { pages: 4096, ..SystemConfig::default() };
        let a = ServerSimulator::new(config.clone(), Scheme::dma_ta(1.0)).run(&trace);
        let b = ServerSimulator::new(config, Scheme::dma_ta(1.0)).run(&trace);
        prop_assert_eq!(a.energy, b.energy);
        prop_assert_eq!(a.horizon, b.horizon);
    }

    /// The utilization factor is a true fraction and the baseline's sits
    /// near 1/3 for a PCI-X / RDRAM ratio of ~3 (Figure 2a), regardless of
    /// seed.
    #[test]
    fn baseline_uf_near_one_third(seed in 0u64..1000) {
        let gen = SyntheticStorageGen {
            transfers_per_ms: 40.0, // light load: little natural overlap
            pages: 8192,
            ..Default::default()
        };
        let trace = gen.generate(SimDuration::from_ms(1), seed);
        let config = SystemConfig { pages: 8192, ..SystemConfig::default() };
        let r = ServerSimulator::new(config, Scheme::baseline()).run(&trace);
        let uf = r.utilization_factor();
        prop_assert!((0.30..=0.55).contains(&uf), "uf {uf}");
    }

    /// The per-request performance guarantee holds for any mu: mean DMA
    /// request service time stays within (1 + mu) * T of the bus slot
    /// reference (the slack account's own invariant).
    #[test]
    fn slack_guarantee_holds(
        seed in 0u64..500,
        mu in 0.0f64..30.0,
    ) {
        let gen = SyntheticStorageGen {
            pages: 4096,
            ..Default::default()
        };
        let trace = gen.generate(SimDuration::from_ms(2), seed);
        let config = SystemConfig { pages: 4096, ..SystemConfig::default() };
        let r = ServerSimulator::new(config.clone(), Scheme::dma_ta(mu)).run(&trace);
        // The reference T is the bus slot period. The paper's guarantee is
        // *soft*: slack is debited after wake/queue delays are incurred and
        // epoch accounting is 1-us granular, so short windows can overrun
        // the budget by a bounded fraction (observed <= ~12% on 2-ms
        // traces); a 15% tolerance plus a 25-ns additive margin (the
        // baseline's own wake-amortized service mean) encodes that bound.
        let t_ref = config.t_request().as_ns_f64();
        let limit = (1.0 + mu) * t_ref * 1.15 + 25.0;
        prop_assert!(
            r.request_service.mean_ns() <= limit,
            "mean {} > limit {}",
            r.request_service.mean_ns(),
            limit
        );
    }
}
