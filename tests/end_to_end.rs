//! Cross-crate integration tests: trace generators feeding the full
//! simulator through the facade crate, exercising every workload and
//! scheme end to end.

use dma_aware_mem::core::experiments::{client_degradation, mu_from_baseline, Workload};
use dma_aware_mem::core::{Scheme, ServerSimulator, SystemConfig};
use dma_aware_mem::power::EnergyCategory;
use dma_aware_mem::sim::SimDuration;
use dma_aware_mem::workloads::Trace;

fn short(w: Workload) -> Trace {
    w.generate(SimDuration::from_ms(3), 99)
}

#[test]
fn every_workload_completes_under_every_scheme() {
    let config = SystemConfig::default();
    for w in Workload::ALL {
        let trace = short(w);
        let dma_events = trace.stats().dma_transfers();
        for scheme in [
            Scheme::baseline(),
            Scheme::dma_ta(0.5),
            Scheme::dma_ta_pl(0.5, 2),
            Scheme::dma_ta_pl(0.5, 3),
            Scheme::dma_ta_pl(0.5, 6),
        ] {
            let r = ServerSimulator::new(config.clone(), scheme).run(&trace);
            assert_eq!(
                r.transfers,
                dma_events,
                "{} lost transfers under {}",
                w.label(),
                r.scheme
            );
            assert!(r.energy.total_mj() > 0.0);
            let uf = r.utilization_factor();
            assert!((0.0..=1.0 + 1e-9).contains(&uf), "uf {uf} out of range");
        }
    }
}

#[test]
fn simulation_is_deterministic_through_the_facade() {
    let config = SystemConfig::default();
    let trace = short(Workload::SyntheticSt);
    let a = ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(0.7, 2)).run(&trace);
    let b = ServerSimulator::new(config, Scheme::dma_ta_pl(0.7, 2)).run(&trace);
    assert_eq!(a.energy, b.energy);
    assert_eq!(a.per_chip_mj, b.per_chip_mj);
    assert_eq!(a.dma_requests, b.dma_requests);
    assert_eq!(a.page_moves, b.page_moves);
    assert_eq!(a.horizon, b.horizon);
}

#[test]
fn trace_io_roundtrip_preserves_simulation_results() {
    let trace = short(Workload::OltpSt);
    let mut buf = Vec::new();
    trace.write_text(&mut buf).expect("serialize");
    let back = Trace::read_text(buf.as_slice()).expect("parse");
    assert_eq!(trace, back);

    let config = SystemConfig::default();
    let a = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
    let b = ServerSimulator::new(config, Scheme::baseline()).run(&back);
    assert_eq!(a.energy, b.energy);
}

#[test]
fn dma_ta_pl_saves_energy_within_budget_on_storage_workloads() {
    let config = SystemConfig::default();
    for w in [Workload::SyntheticSt, Workload::OltpSt] {
        let trace = w.generate(SimDuration::from_ms(8), 5);
        let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
        let extra = w.client_extra_latency();
        let cp = 0.10;
        let mu = mu_from_baseline(&config, &baseline, cp, extra);
        let r = ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(mu, 2)).run(&trace);
        let savings = r.savings_vs(&baseline);
        assert!(
            savings > 0.05,
            "{}: expected >5% savings, got {:.1}%",
            w.label(),
            savings * 100.0
        );
        let deg = client_degradation(&r, &baseline, extra);
        assert!(
            deg <= cp + 0.03,
            "{}: degradation {:.1}% blew the 10% budget",
            w.label(),
            deg * 100.0
        );
    }
}

#[test]
fn higher_cp_limit_never_reduces_utilization() {
    let config = SystemConfig::default();
    let trace = short(Workload::SyntheticSt);
    let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
    let extra = Workload::SyntheticSt.client_extra_latency();
    let mut last_uf = baseline.utilization_factor();
    for cp in [0.02, 0.10, 0.30] {
        let mu = mu_from_baseline(&config, &baseline, cp, extra);
        let r = ServerSimulator::new(config.clone(), Scheme::dma_ta(mu)).run(&trace);
        let uf = r.utilization_factor();
        assert!(
            uf >= last_uf - 0.05,
            "uf regressed at cp {cp}: {uf} < {last_uf}"
        );
        last_uf = last_uf.max(uf);
    }
}

#[test]
fn migration_energy_appears_only_with_pl() {
    let config = SystemConfig::default();
    // Long enough to cross at least one PL reorganization interval (5 ms).
    let trace = Workload::SyntheticSt.generate(SimDuration::from_ms(8), 99);
    let ta = ServerSimulator::new(config.clone(), Scheme::dma_ta(0.5)).run(&trace);
    assert_eq!(ta.energy.energy_mj(EnergyCategory::Migration), 0.0);
    assert_eq!(ta.page_moves, 0);
    let pl = ServerSimulator::new(config, Scheme::dma_ta_pl(0.5, 2)).run(&trace);
    assert!(pl.page_moves > 0);
    assert!(pl.energy.energy_mj(EnergyCategory::Migration) > 0.0);
}

#[test]
fn database_workloads_serve_all_processor_accesses() {
    let config = SystemConfig::default();
    for w in [Workload::OltpDb, Workload::SyntheticDb] {
        let trace = short(w);
        let expected = trace.stats().proc_accesses;
        let r = ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(0.5, 2)).run(&trace);
        assert_eq!(
            r.proc_accesses,
            expected,
            "{} lost proc accesses",
            w.label()
        );
    }
}

#[test]
fn energy_total_equals_sum_of_chips() {
    let config = SystemConfig::default();
    let trace = short(Workload::OltpSt);
    let r = ServerSimulator::new(config, Scheme::dma_ta_pl(0.5, 2)).run(&trace);
    let sum: f64 = r.per_chip_mj.iter().sum();
    assert!(
        (sum - r.energy.total_mj()).abs() < 1e-9,
        "per-chip sum {sum} != total {}",
        r.energy.total_mj()
    );
}
