//! Policy explorer: how the pieces under the DMA-aware techniques behave.
//!
//! Sweeps the low-level power-management policy (the layer the paper builds
//! on), the bus discipline, and the DMA-memory request granularity, and
//! prints a comparison matrix — useful for understanding which knobs matter
//! before reaching for DMA-TA/PL.
//!
//! ```text
//! cargo run --release --example policy_explorer
//! ```

use dma_trace::{SyntheticStorageGen, TraceGen};
use dmamem::{PolicyKind, Scheme, ServerSimulator, SystemConfig};
use iobus::{BusConfig, BusDiscipline};
use mempower::{EnergyCategory, PowerMode};
use simcore::SimDuration;

fn main() {
    let trace = SyntheticStorageGen::default().generate(SimDuration::from_ms(5), 3);
    println!("workload: {}\n", trace.stats());

    println!("low-level policy comparison (no DMA-aware techniques):");
    println!("policy               total mJ   low-power%   transitions%   wakes");
    for (label, policy) in [
        ("always-active", PolicyKind::AlwaysActive),
        ("static standby", PolicyKind::Static(PowerMode::Standby)),
        ("static nap", PolicyKind::Static(PowerMode::Nap)),
        ("static powerdown", PolicyKind::Static(PowerMode::Powerdown)),
        ("dynamic (Lebeck)", PolicyKind::Dynamic { scale: 1.0 }),
        ("dynamic x4 thresholds", PolicyKind::Dynamic { scale: 4.0 }),
        ("self-tuning", PolicyKind::SelfTuning),
    ] {
        let config = SystemConfig {
            policy,
            ..SystemConfig::default()
        };
        let r = ServerSimulator::new(config, Scheme::baseline()).run(&trace);
        println!(
            "{:<20} {:>8.3}   {:>9.1}%   {:>11.1}%   {:>5}",
            label,
            r.energy.total_mj(),
            r.energy.fraction(EnergyCategory::LowPower) * 100.0,
            r.energy.fraction(EnergyCategory::Transition) * 100.0,
            r.wakes
        );
    }

    println!("\nbus discipline and request granularity (dynamic policy):");
    println!("discipline    request   total mJ   uf");
    for (dl, d) in [
        ("per-engine", BusDiscipline::PerEngine),
        ("strict-TDM", BusDiscipline::TimeDivision),
    ] {
        for bytes in [8u64, 64] {
            let config = SystemConfig::default().with_buses(
                3,
                BusConfig::pci_x()
                    .with_discipline(d)
                    .with_request_bytes(bytes),
            );
            let r = ServerSimulator::new(config, Scheme::baseline()).run(&trace);
            println!(
                "{:<12} {:>6}B   {:>8.3}   {:.3}",
                dl,
                bytes,
                r.energy.total_mj(),
                r.utilization_factor()
            );
        }
    }

    println!(
        "\nTakeaway: the dynamic policy already minimizes threshold waste; the\n\
         remaining Active-Idle-DMA energy is what DMA-TA and PL recover (see\n\
         the quickstart and storage_server examples)."
    );
}
