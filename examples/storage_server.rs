//! Storage-server scenario: the paper's OLTP-St workload end to end.
//!
//! Rebuilds the full server path behind the trace — client requests, LRU
//! buffer cache, a 128-disk array timed by the `disksim` model — then
//! evaluates every scheme at several CP-Limits and shows how the
//! popularity-based layout reshapes per-chip energy (hot chips work,
//! cold chips sleep).
//!
//! ```text
//! cargo run --release --example storage_server
//! ```

use dma_trace::{OltpStGen, TraceGen};
use dmamem::experiments::{client_degradation, mu_from_baseline, Workload};
use dmamem::{Scheme, ServerSimulator, SystemConfig};
use simcore::SimDuration;

fn main() {
    let gen = OltpStGen::default();
    println!(
        "storage server: {} clients req/ms, {}-page cache over {} pages, {} disks",
        gen.client_req_per_ms, gen.cache_pages, gen.pages, gen.disks
    );
    let trace = gen.generate(SimDuration::from_ms(30), 7);
    let stats = trace.stats();
    println!("trace: {stats}");
    println!("popularity: {}\n", trace.popularity_cdf());

    let config = SystemConfig::default();
    let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
    println!("baseline breakdown:\n{}\n", baseline.energy);

    let extra = Workload::OltpSt.client_extra_latency();
    println!("scheme          CP-Limit   savings   measured-deg   uf");
    for cp in [0.05, 0.10, 0.20] {
        let mu = mu_from_baseline(&config, &baseline, cp, extra);
        for scheme in [Scheme::dma_ta(mu), Scheme::dma_ta_pl(mu, 2)] {
            let r = ServerSimulator::new(config.clone(), scheme).run(&trace);
            println!(
                "{:<15} {:>6.0}%   {:>6.1}%   {:>11.1}%   {:.2}",
                r.scheme,
                cp * 100.0,
                r.savings_vs(&baseline) * 100.0,
                client_degradation(&r, &baseline, extra) * 100.0,
                r.utilization_factor()
            );
        }
    }

    // Show the hot/cold chip structure PL creates at 10% CP-Limit.
    let mu = mu_from_baseline(&config, &baseline, 0.10, extra);
    let pl = ServerSimulator::new(config, Scheme::dma_ta_pl(mu, 2)).run(&trace);
    println!("\nper-chip energy (mJ), baseline vs DMA-TA-PL(2):");
    println!("chip   baseline   DMA-TA-PL(2)");
    for (i, (b, p)) in baseline
        .per_chip_mj
        .iter()
        .zip(&pl.per_chip_mj)
        .enumerate()
        .take(8)
    {
        println!("{i:>4}   {b:>8.3}   {p:>12.3}");
    }
    println!(
        "...    ({} pages migrated into the hot chips)",
        pl.page_moves
    );
}
