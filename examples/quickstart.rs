//! Quickstart: simulate a storage-server memory workload under the
//! baseline policy and under DMA-aware management, and compare energy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dma_trace::{SyntheticStorageGen, TraceGen};
use dmamem::experiments::{client_degradation, mu_from_baseline, Workload};
use dmamem::{Scheme, ServerSimulator, SystemConfig};
use simcore::SimDuration;

fn main() {
    // 1. A synthetic storage-server trace: Poisson DMA transfers at
    //    100/ms with Zipf page popularity (the paper's Synthetic-St).
    let trace = SyntheticStorageGen::default().generate(SimDuration::from_ms(10), 42);
    println!("workload: {}", trace.stats());

    // 2. The paper's system: 32 RDRAM chips (1 GB), three PCI-X buses,
    //    dynamic threshold power management underneath.
    let config = SystemConfig::default();

    // 3. Baseline: low-level power management only.
    let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
    println!("\n{baseline}\n{}", baseline.energy);

    // 4. DMA-aware: temporal alignment + popularity-based layout, budgeted
    //    for at most 10% client-perceived response-time degradation.
    let extra = Workload::SyntheticSt.client_extra_latency();
    let mu = mu_from_baseline(&config, &baseline, 0.10, extra);
    let managed = ServerSimulator::new(config, Scheme::dma_ta_pl(mu, 2)).run(&trace);
    println!("\n{managed}\n{}", managed.energy);

    println!(
        "\nDMA-TA-PL(2) saved {:.1}% energy at {:+.1}% client-perceived degradation \
         (budget 10%); utilization factor {:.2} -> {:.2}",
        managed.savings_vs(&baseline) * 100.0,
        client_degradation(&managed, &baseline, extra) * 100.0,
        baseline.utilization_factor(),
        managed.utilization_factor(),
    );
}
