//! Database-server scenario: processor accesses interfering with DMA-aware
//! energy management (the paper's OLTP-Db / Figure 9 axis).
//!
//! Database servers access the buffer cache from *both* the processor and
//! the DMA engines. Processor accesses get strict priority and consume the
//! very idle cycles DMA-TA tries to reclaim, so savings shrink as the
//! per-transfer processor burst grows.
//!
//! ```text
//! cargo run --release --example database_server
//! ```

use dma_trace::{OltpDbGen, SyntheticDbGen, TraceGen};
use dmamem::experiments::{mu_from_baseline, Workload};
use dmamem::{Scheme, ServerSimulator, SystemConfig};
use simcore::SimDuration;

fn main() {
    let config = SystemConfig::default();
    let duration = SimDuration::from_ms(15);

    // The calibrated OLTP-Db stand-in: 100 transfers/ms, ~233 processor
    // accesses per transfer (IBM DB2's measured figure in the paper).
    let trace = OltpDbGen::default().generate(duration, 11);
    println!("OLTP-Db trace: {}", trace.stats());
    let baseline = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
    println!("\nbaseline:\n{}", baseline.energy);

    let extra = Workload::OltpDb.client_extra_latency();
    let mu = mu_from_baseline(&config, &baseline, 0.10, extra);
    let tapl = ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(mu, 2)).run(&trace);
    println!(
        "\nDMA-TA-PL(2) at 10% CP-Limit: {:+.1}% energy ({} page moves, {} proc accesses served)",
        tapl.savings_vs(&baseline) * 100.0,
        tapl.page_moves,
        tapl.proc_accesses
    );

    // The Figure 9 axis: sweep the processor burst per transfer.
    println!("\nprocessor accesses per transfer vs savings (Synthetic-Db, 10% CP):");
    println!("proc/transfer   DMA-TA   DMA-TA-PL(2)");
    for n in [0.0, 50.0, 233.0] {
        let gen = SyntheticDbGen::default().with_proc_per_transfer(n);
        let trace = gen.generate(duration, 11);
        let base = ServerSimulator::new(config.clone(), Scheme::baseline()).run(&trace);
        let extra = Workload::SyntheticDb.client_extra_latency();
        let mu = mu_from_baseline(&config, &base, 0.10, extra);
        let ta = ServerSimulator::new(config.clone(), Scheme::dma_ta(mu)).run(&trace);
        let tapl = ServerSimulator::new(config.clone(), Scheme::dma_ta_pl(mu, 2)).run(&trace);
        println!(
            "{:>12.0}   {:>+5.1}%   {:>+11.1}%",
            n,
            ta.savings_vs(&base) * 100.0,
            tapl.savings_vs(&base) * 100.0
        );
    }
}
